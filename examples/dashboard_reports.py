"""Use case (a) from the paper's introduction: dashboard refresh.

"Queries that analyze logs to generate aggregated dashboard reports, if
sped up, would increase the refresh rate of dashboards at no extra cost."

We simulate a log-analytics dashboard over web-visit logs: three report
queries run on every refresh cycle. With Quickr the same cluster budget
refreshes the dashboard several times more often, and every tile carries a
confidence interval.

Run:  python examples/dashboard_reports.py
"""

from repro import Executor, QuickrPlanner, col, scan
from repro.algebra import avg, count, count_distinct, sum_
from repro.workloads.other import generate_other


def build_reports(db):
    """The dashboard's three tiles."""
    revenue_by_country = (
        scan(db, "uservisits")
        .groupby("uv_countrycode")
        .agg(sum_(col("uv_adrevenue"), "revenue"), count("visits"))
        .orderby("revenue", desc=True)
        .build("revenue_by_country")
    )
    engagement_by_rank = (
        scan(db, "uservisits")
        .join(scan(db, "rankings"), on=[("uv_pageid", "r_pageid")])
        .where(col("r_pagerank") > 20)
        .groupby("r_pagerank")
        .agg(avg(col("r_avgduration"), "avg_duration"), count("visits"))
        .build("engagement_by_rank")
    )
    weekly_actives = (
        scan(db, "uservisits")
        .where(col("uv_date") >= 358)
        .agg(count_distinct(col("uv_userid"), "active_users"), sum_(col("uv_adrevenue"), "revenue"))
        .build("weekly_actives")
    )
    return [revenue_by_country, engagement_by_rank, weekly_actives]


def main():
    db = generate_other(scale=2.0, seed=3)
    planner = QuickrPlanner(db)
    executor = Executor(db)

    total_exact, total_quickr = 0.0, 0.0
    print(f"{'report':<24}{'plan':<34}{'exact mh':>12}{'quickr mh':>12}{'gain':>8}")
    for query in build_reports(db):
        baseline = planner.plan_baseline(query)
        result = planner.plan(query)
        exact = executor.execute(baseline.plan)
        approx = executor.execute(result.plan)
        total_exact += exact.cost.machine_hours
        total_quickr += approx.cost.machine_hours
        label = "+".join(result.sampler_kinds()) or "exact (unapproximable)"
        print(
            f"{query.name:<24}{label:<34}{exact.cost.machine_hours:>12,.0f}"
            f"{approx.cost.machine_hours:>12,.0f}"
            f"{exact.cost.machine_hours / approx.cost.machine_hours:>7.2f}x"
        )

    refresh_gain = total_exact / total_quickr
    print(f"\nwhole-dashboard machine-hours gain: {refresh_gain:.2f}x")
    print(f"-> the dashboard refreshes {refresh_gain:.1f}x more often on the same budget.")


if __name__ == "__main__":
    main()
