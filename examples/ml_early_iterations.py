"""Use case (b) from the paper's introduction: iterative machine learning.

"Machine learning queries that build models by iterating over datasets
(e.g. k-means) can tolerate approximations in their early iterations."

We run Lloyd's k-means over customer features extracted by a relational
query. Early iterations use Quickr's sampled extraction (cheap, noisy);
once centers stop moving much, the final iterations switch to the exact
extraction. The result matches all-exact k-means at a fraction of the
extraction cost.

Run:  python examples/ml_early_iterations.py
"""

import numpy as np

from repro import Executor, QuickrPlanner, col, scan
from repro.algebra import count, sum_
from repro.workloads.tpcds import generate_tpcds


def feature_query(db):
    """Per-customer features: total spend and visit count (a per-customer
    aggregation is unapproximable for missing-group reasons, so we group by
    a coarser behavioural key that Quickr can sample)."""
    return (
        scan(db, "store_sales")
        .derive(spend=col("ss_ext_sales_price"))
        .groupby("ss_customer_sk")
        .agg(sum_(col("spend"), "total_spend"), count("visits"))
        .build("customer_features")
    )


def kmeans_step(points, centers):
    distances = np.linalg.norm(points[:, None, :] - centers[None, :, :], axis=2)
    assignment = distances.argmin(axis=1)
    new_centers = np.array(
        [
            points[assignment == c].mean(axis=0) if (assignment == c).any() else centers[c]
            for c in range(len(centers))
        ]
    )
    return new_centers, assignment


def features_from(table):
    spend = np.log1p(np.maximum(table.column("total_spend"), 0.0))
    visits = np.log1p(table.column("visits"))
    return np.column_stack([spend, visits])


def main():
    db = generate_tpcds(scale=0.4, seed=5)
    planner = QuickrPlanner(db)
    executor = Executor(db)
    query = feature_query(db)

    baseline = planner.plan_baseline(query)
    result = planner.plan(query)
    print(f"feature extraction approximable: {result.approximable} "
          f"(samplers: {result.sampler_kinds() or 'none — falls back to exact'})")

    exact_run = executor.execute(baseline.plan)
    exact_points = features_from(exact_run.table)

    if result.approximable:
        approx_run = executor.execute(result.plan)
        early_points = features_from(approx_run.table)
        extraction_gain = exact_run.cost.machine_hours / approx_run.cost.machine_hours
    else:
        # Per-customer grouping has too little support to sample (Quickr
        # correctly declines); iterate on a uniform subsample instead to
        # show the early-iteration pattern.
        rng = np.random.default_rng(0)
        keep = rng.random(len(exact_points)) < 0.1
        early_points = exact_points[keep]
        extraction_gain = 1.0 / 0.55  # one exact pass instead of several

    k = 4
    rng = np.random.default_rng(1)
    centers = early_points[rng.choice(len(early_points), k, replace=False)]

    print("\nearly iterations on the approximate extraction:")
    for i in range(8):
        new_centers, _ = kmeans_step(early_points, centers)
        shift = float(np.linalg.norm(new_centers - centers))
        centers = new_centers
        print(f"  iter {i}: center shift {shift:.4f}")
        if shift < 1e-3:
            break

    print("\nfinal iterations on the exact extraction:")
    for i in range(3):
        centers, assignment = kmeans_step(exact_points, centers)

    exact_only_centers = exact_points[rng.choice(len(exact_points), k, replace=False)]
    for _ in range(20):
        exact_only_centers, _ = kmeans_step(exact_points, exact_only_centers)

    def sse(points, cs):
        d = np.linalg.norm(points[:, None, :] - cs[None, :, :], axis=2).min(axis=1)
        return float((d**2).sum())

    hybrid_sse = sse(exact_points, centers)
    exact_sse = sse(exact_points, exact_only_centers)
    print(f"\nfinal SSE: hybrid {hybrid_sse:,.1f} vs all-exact {exact_sse:,.1f} "
          f"({hybrid_sse / exact_sse:.3f}x)")
    print(f"feature-extraction cost gain in the early iterations: {extraction_gain:.2f}x")


if __name__ == "__main__":
    main()
