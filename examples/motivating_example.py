"""The paper's Figure 1 motivating example, end to end.

Per item color and year: total profit from store sales and the number of
unique customers who purchased from stores, returned to stores, and bought
from the catalog. Three fact tables join on a shared customer key — the
query apriori sampling cannot help and Quickr's universe sampler was built
for. The script shows:

1. the plan ASALQA produces (universe samplers on the fact tables, all on
   the customer key, sharing one subspace);
2. the measured speedup and the answer quality;
3. the Figure 9 dominance unrolling used to certify the plan's accuracy.

Run:  python examples/motivating_example.py
"""

import numpy as np

from repro import Executor, QuickrPlanner
from repro.core.accuracy import unroll_plan
from repro.workloads.tpcds import generate_tpcds, query_by_name


def print_plan(node, depth=0):
    print("  " * depth + repr(node))
    for child in node.children:
        print_plan(child, depth + 1)


def main():
    db = generate_tpcds(scale=0.4, seed=7)
    planner = QuickrPlanner(db)
    executor = Executor(db)

    query = query_by_name(db, "q12")  # the Figure 1 query
    result = planner.plan(query)

    print("=== ASALQA's plan for the Figure 1 query ===")
    print_plan(result.plan)
    print(f"\nsamplers: {result.sampler_kinds()}")
    print(f"alternatives explored: {result.alternatives_explored}, "
          f"optimization time: {result.qo_time_seconds * 1000:.0f} ms")

    exact = executor.execute(result.baseline_plan)
    approx = executor.execute(result.plan)
    print(f"\nmachine-hours: baseline {exact.cost.machine_hours:,.0f} vs "
          f"Quickr {approx.cost.machine_hours:,.0f} "
          f"({exact.cost.machine_hours / approx.cost.machine_hours:.2f}x gain)")
    print(f"effective passes over data: {exact.cost.effective_passes:.2f} -> "
          f"{approx.cost.effective_passes:.2f}")

    # Answer quality: missed groups and aggregate error.
    def to_map(table, value):
        return {
            (table.column("i_color")[i], table.column("d_year")[i]): table.column(value)[i]
            for i in range(table.num_rows)
        }

    truth = to_map(exact.table, "total_profit")
    estimate = to_map(approx.table, "total_profit")
    missed = [k for k in truth if k not in estimate]
    errors = [abs(estimate[k] - truth[k]) / abs(truth[k]) for k in truth if k in estimate]
    print(f"\ngroups: {len(truth)}, missed: {len(missed)}, "
          f"median profit error: {np.median(errors):.1%}")

    cd_truth = to_map(exact.table, "uniq_cust")
    cd_est = to_map(approx.table, "uniq_cust")
    cd_errors = [abs(cd_est[k] - cd_truth[k]) / cd_truth[k] for k in cd_truth if k in cd_est]
    print(f"median unique-customers error (universe-rescaled COUNT DISTINCT): "
          f"{np.median(cd_errors):.1%}")

    print("\n=== Figure 9: dominance unrolling (accuracy certificate) ===")
    unrolled = unroll_plan(result.plan)
    if unrolled:
        for step in unrolled.steps:
            print(f"  [{step.rule}] across {step.operator}: {step.detail}")
        print(f"  => equivalent single sampler at the root: "
              f"{unrolled.kind}(p={unrolled.p:.4f})")


if __name__ == "__main__":
    main()
