"""Figure 8b: quantifying the error of Quickr's answers.

Paper: ~80% of queries within +-10% aggregation error, >90% within +-20%;
missed groups only via ORDER BY <agg> LIMIT 100 (rank changes); on the
full answer (before LIMIT) no groups are missed for 99% of queries.
"""

from repro.experiments.figures import figure8b_error
from repro.experiments.report import format_table


def test_figure8b_error(benchmark, outcomes):
    data = benchmark.pedantic(lambda: figure8b_error(outcomes), rounds=1, iterations=1)

    print("\n=== Figure 8b: error profile ===")
    print(
        format_table(
            [
                {
                    "within +-10% (paper 80%)": f"{data['fraction_within_10pct']:.0%}",
                    "within +-20% (paper 92%)": f"{data['fraction_within_20pct']:.0%}",
                    "no missed groups (paper >90%)": f"{data['fraction_no_missed_groups']:.0%}",
                    "no missed, full answer (paper 99%)": f"{data['fraction_no_missed_groups_full']:.0%}",
                }
            ]
        )
    )

    limit_offenders = [
        o.name
        for o in outcomes
        if o.error.groups_missed > 0 and o.error_full.groups_missed == 0
    ]
    print(f"queries missing groups ONLY due to LIMIT-on-aggregate: {limit_offenders}")

    # Shape assertions mirroring the paper's claims.
    assert data["fraction_within_20pct"] >= 0.7
    assert data["fraction_no_missed_groups"] >= 0.85
    assert data["fraction_no_missed_groups_full"] >= 0.95
    # The full answer never misses more than the limited answer.
    assert data["fraction_no_missed_groups_full"] >= data["fraction_no_missed_groups"] - 1e-9
