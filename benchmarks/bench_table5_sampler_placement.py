"""Table 5: number of samplers per query and their plan locations.

Paper: 51% of queries have exactly one sampler, 25% are unapproximable,
and 60% of samplers sit on the first pass over data.
"""

from repro.experiments.figures import table5_sampler_placement
from repro.experiments.report import format_table


def test_table5_sampler_placement(benchmark, outcomes):
    data = benchmark.pedantic(lambda: table5_sampler_placement(outcomes), rounds=1, iterations=1)

    print("\n=== Table 5: samplers per query (paper: 0:25% 1:51% 2:9% 3:11% ...) ===")
    print(format_table([{str(k): f"{v:.0%}" for k, v in data["samplers_per_query"].items()}]))
    print("=== sampler-source distance (paper: 0:60% 1:12% 2:10% 3:17%) ===")
    print(format_table([{str(k): f"{v:.0%}" for k, v in data["sampler_source_distance"].items()}]))
    print(f"unapproximable: {data['unapproximable_fraction']:.0%} (paper: ~25%)")
    print(f"samplers on first pass: {data['first_pass_sampler_fraction']:.0%} (paper: 60%)")

    # Shape assertions.
    assert 0.1 <= data["unapproximable_fraction"] <= 0.55
    one_sampler = data["samplers_per_query"].get(1, 0.0)
    assert one_sampler >= 0.3  # a majority-ish of queries use exactly one
    assert data["first_pass_sampler_fraction"] >= 0.5  # most samplers early
