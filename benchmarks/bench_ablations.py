"""Ablations over the design choices DESIGN.md calls out.

* k sweep (Section 4.2.6: "plans output by ASALQA are similar for
  k in [5, 100]") — sampler-type decisions should be stable across k;
* max-probability sweep — the 0.1 cap trades coverage for gain;
* degree-of-parallelism reduction (Appendix A) — disabling the broadcast
  threshold (all joins shuffle) raises the sampling gains.
"""

import numpy as np

from repro.core.asalqa import Asalqa, AsalqaOptions
from repro.core.costing import CostingOptions
from repro.engine.metrics import ClusterConfig
from repro.experiments.report import format_table
from repro.workloads.tpcds import query_by_name

PROBE_QUERIES = ("q02", "q07", "q12", "q15", "q19", "q22")


def _plan_kinds(db, options):
    from repro.stats.catalog import Catalog

    optimizer = Asalqa(Catalog(db), options)
    kinds = {}
    for name in PROBE_QUERIES:
        result = optimizer.optimize(query_by_name(db, name))
        kinds[name] = tuple(sorted(result.sampler_kinds()))
    return kinds


def test_ablation_k_sweep(benchmark, tpcds_db):
    """Paper: plan choices are stable for k in [5, 100]."""

    def run():
        return {
            k: _plan_kinds(tpcds_db, AsalqaOptions(costing=CostingOptions(k=k)))
            for k in (5, 30, 100)
        }

    by_k = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Ablation: sampler kinds per query across k ===")
    rows = [{"k": k, **{q: "/".join(kinds[q]) or "-" for q in PROBE_QUERIES}} for k, kinds in by_k.items()]
    print(format_table(rows))

    # Most probe queries keep the same sampler family across k.
    stable = sum(
        1 for q in PROBE_QUERIES if len({by_k[k][q] for k in (5, 30, 100)}) == 1
    )
    assert stable >= len(PROBE_QUERIES) // 2


def test_ablation_max_probability(benchmark, tpcds_db):
    """A tighter probability cap declares more queries unapproximable."""

    def run():
        out = {}
        for cap in (0.02, 0.1, 0.5):
            kinds = _plan_kinds(
                tpcds_db, AsalqaOptions(costing=CostingOptions(max_probability=cap))
            )
            out[cap] = sum(1 for v in kinds.values() if v)
        return out

    approximable = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Ablation: approximable probe queries vs max sampling probability ===")
    print(format_table([{f"cap {c}": n for c, n in approximable.items()}]))
    assert approximable[0.5] >= approximable[0.02]


def test_ablation_broadcast_threshold(benchmark, tpcds_db):
    """With all joins as shuffle joins (threshold 0), plans make more
    passes over data, so sampling saves more — Appendix A's argument."""
    from repro.experiments.runner import ExperimentRunner

    def gains_with(threshold):
        cluster = ClusterConfig(broadcast_threshold=threshold)
        runner = ExperimentRunner(tpcds_db, cluster=cluster)
        outcomes = [runner.run_query(query_by_name(tpcds_db, n)) for n in ("q02", "q07")]
        return float(np.mean([o.machine_hours_gain for o in outcomes]))

    def run():
        return {"broadcast": gains_with(1_000), "all_shuffle": gains_with(0)}

    gains = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Ablation: mean gain with vs without broadcast joins ===")
    print(format_table([{k: f"{v:.2f}x" for k, v in gains.items()}]))
    assert gains["all_shuffle"] >= gains["broadcast"] * 0.9
