"""Transport perf bar: shared-memory arena vs pickle-over-pipe at D=4.

Acceptance bars (the zero-copy transport's claims, end to end):

* **Identity** — for every measured query, the shm run's answer is
  bit-identical to the pickle run's (same ``task_seed`` drives both).
* **O(schema) pipe traffic** — whenever the arena engages, the bytes that
  actually cross the worker pipe are descriptor-sized (< 64 KiB per
  query), orders of magnitude below the bytes-pickled of the same run on
  the pickle path.
* **Wall clock** — on a machine with >= 4 usable cores, the
  transport-bound shuffle runs >= 1.5x faster through the arena than over
  the pipe (``REPRO_TRANSPORT_SPEEDUP_BAR`` tunes the bar; the assert is
  skipped on smaller machines, where the pickle path's serialization
  contends with the workers' compute for the same core and the ratio is
  hardware-bounded, not transport-bounded).

The full report — per-query wall clock on both transports, bytes pickled,
bytes shared, peak RSS — is written to ``BENCH_exec.json``
(``REPRO_TRANSPORT_BENCH_OUT``) for trend tracking.
"""

import multiprocessing as mp
import os

import pytest

from repro.experiments.transport import (
    DEFAULT_QUERIES,
    SHUFFLE_ROWS,
    measure_transport,
    write_report,
)
from repro.parallel import available_parallelism, transport
from repro.workloads.tpcds import generate_tpcds

SCALE = float(os.environ.get("REPRO_TRANSPORT_SCALE", "0.15"))
SEED = int(os.environ.get("REPRO_BENCH_SEED", "1"))
DEGREE = 4
SPEEDUP_BAR = float(os.environ.get("REPRO_TRANSPORT_SPEEDUP_BAR", "1.5"))
OUTPUT = os.environ.get("REPRO_TRANSPORT_BENCH_OUT", "BENCH_exec.json")

pytestmark = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods() or not transport.shm_available(),
    reason="requires fork workers and working POSIX shared memory",
)


def test_transport_bars():
    db = generate_tpcds(scale=SCALE, seed=SEED)
    report = measure_transport(
        db,
        names=DEFAULT_QUERIES,
        degree=DEGREE,
        shuffle_rows=SHUFFLE_ROWS,
        scale=SCALE,
    )
    write_report(report, OUTPUT)

    # Identity: shm and pickle agree byte for byte on every measured plan.
    for row in report["queries"] + [report["shuffle"]]:
        assert row["identical"], f"{row['query']} diverged between transports"

    # O(schema): whenever the arena engaged, pipe traffic is descriptor-
    # sized while the same results pickled would cross as O(data).
    engaged = [r for r in report["queries"] + [report["shuffle"]] if r["transport"] == "shm"]
    assert engaged, "no measured plan engaged the shm transport"
    for row in engaged:
        assert 0 < row["bytes_on_pipe_shm"] < 64 * 1024, row
        assert row["bytes_pickled"] > row["bytes_on_pipe_shm"], row
        assert row["bytes_shared"] > row["bytes_on_pipe_shm"], row

    # Peak RSS is recorded (ru_maxrss is KiB on Linux, bytes on macOS —
    # either way it is positive when the run did real work).
    assert report["peak_rss_kb"] > 0

    # Wall-clock bar: only meaningful when the workers have real cores.
    if available_parallelism() >= DEGREE and SPEEDUP_BAR > 0:
        assert report["speedup_shuffle"] >= SPEEDUP_BAR, (
            f"transport-bound shuffle speedup {report['speedup_shuffle']}x "
            f"below the {SPEEDUP_BAR}x bar: {report['shuffle']}"
        )
