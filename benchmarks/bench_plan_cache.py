"""Repeated-query throughput: cold vs warm plan/compilation caches.

The paper's production trace is dominated by repeated queries (over half the
daily workload recurs). With fingerprint-keyed caches in the planner
(skipping normalization, join reordering and the ASALQA exploration) and the
executor (skipping lowering to a physical plan), a repeated query pays only
execution. This benchmark runs the full 24-query TPC-DS suite both ways:

* cold — fresh planner and executor every round: every query pays planning,
  compilation and execution;
* warm — persistent planner and executor: planning and compilation are
  cache hits, so each round pays execution only.

The acceptance bar is warm >= 1.3x cold throughput. It uses its own small
scale (``REPRO_PLAN_CACHE_SCALE``, default 0.01) because the bar measures
per-query *overhead*, which is scale-independent, against execution time,
which is not: at large scales execution dominates and the ratio tends to 1.
"""

import os
import time

from repro.engine.executor import Executor
from repro.optimizer.planner import QuickrPlanner
from repro.workloads.tpcds import generate_tpcds, queries

SCALE = float(os.environ.get("REPRO_PLAN_CACHE_SCALE", "0.01"))
SEED = int(os.environ.get("REPRO_BENCH_SEED", "1"))
ROUNDS = int(os.environ.get("REPRO_PLAN_CACHE_ROUNDS", "3"))
MIN_SPEEDUP = 1.3


def run_suite(planner, executor, workload):
    for query in workload:
        executor.execute(planner.plan(query).plan)


def test_warm_cache_repeated_suite_speedup():
    db = generate_tpcds(scale=SCALE, seed=SEED)
    workload = queries(db)

    # Cold: nothing survives between rounds — every round replans,
    # recompiles and re-executes all 24 queries.
    cold_times = []
    for _ in range(ROUNDS):
        planner = QuickrPlanner(db, plan_cache_size=0)
        executor = Executor(db, plan_cache_size=0)
        start = time.perf_counter()
        run_suite(planner, executor, workload)
        cold_times.append(time.perf_counter() - start)

    # Warm: one planner + one executor, caches primed by a first pass.
    planner = QuickrPlanner(db)
    executor = Executor(db)
    run_suite(planner, executor, workload)
    # Harvest boundary: the priming pass's misses and timings must not
    # bleed into the warm-phase numbers (cache *entries* survive the reset,
    # only the statistics zero out).
    priming = executor.reset_metrics()
    planner.reset_cache_stats()
    assert priming["timings"]["compile_seconds"] > 0.0
    assert executor.timings()["compile_seconds"] == 0.0

    warm_times = []
    for _ in range(ROUNDS):
        start = time.perf_counter()
        run_suite(planner, executor, workload)
        warm_times.append(time.perf_counter() - start)

    # Every warm query hit both caches — and with the reset above these
    # counters now cover exactly the measured rounds, so equality (not >=)
    # on misses proves the priming pass didn't leak in.
    assert planner.plan_cache_hits >= ROUNDS * len(workload)
    assert planner.plan_cache_misses == 0
    assert executor.plan_cache.hits >= ROUNDS * len(workload)
    assert executor.plan_cache.misses == 0
    registry_hits = executor.registry.total("plan_cache.hits")
    assert registry_hits >= ROUNDS * len(workload)

    cold, warm = min(cold_times), min(warm_times)
    speedup = cold / warm
    print(
        f"\nplan-cache bench: scale={SCALE} rounds={ROUNDS} "
        f"cold={cold * 1e3:.1f}ms warm={warm * 1e3:.1f}ms speedup={speedup:.2f}x"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"warm-cache suite only {speedup:.2f}x faster than cold "
        f"(cold {cold * 1e3:.1f}ms, warm {warm * 1e3:.1f}ms); need {MIN_SPEEDUP}x"
    )
