"""Table 6: BlinkDB-style apriori sampling under storage budgets.

Paper: with default parameters, coverage is 0/64 at 0.5x-1x storage and at
most 14/64 even at 10x; median gain over all queries is 0%. The structural
causes (large and diverse QCSes, fact-fact joins) are workload properties,
so the shape must reproduce here: poor coverage at small budgets, modest
improvement with budget, never a majority of queries.
"""

import pytest

from repro.baselines.blinkdb import BlinkDB
from repro.experiments.report import format_table

BUDGETS = (0.5, 1.0, 4.0, 10.0)


@pytest.fixture(scope="module")
def shared_system(tpcds_db):
    """One BlinkDB instance per cap so exact answers are computed once."""
    return {}


@pytest.mark.parametrize("params", ["default", "small_groups"])
def test_table6_blinkdb(benchmark, tpcds_db, tpcds_queries, params, shared_system):
    # Paper: "Default parameters (K=M=1e5)" vs "Tuned for small group size
    # (K=M=1e1)": the cap per stratum.
    cap = 100_000 if params == "default" else 10

    def run():
        system = shared_system.setdefault(cap, BlinkDB(tpcds_db, cap_per_stratum=cap))
        if shared_system.get("exact_cache") is None and len(shared_system) > 1:
            # Share the exact-answer cache across parameterizations.
            first = next(v for k, v in shared_system.items() if k != cap and k != "exact_cache")
            system._exact_cache = first._exact_cache
        return [system.evaluate(tpcds_queries, budget) for budget in BUDGETS]

    reports = benchmark.pedantic(run, rounds=1, iterations=1)

    print(f"\n=== Table 6: BlinkDB on TPC-DS ({params}, cap={cap}) ===")
    print(format_table([r.as_row() for r in reports]))

    # The paper's headline: at realistic storage budgets (up to the input's
    # own size) coverage is poor and the median query gains nothing.
    realistic = [r for r in reports if r.budget_multiplier <= 1.0]
    assert all(r.coverage / r.total_queries <= 0.35 for r in realistic)
    assert all(r.median_gain_all <= 1.2 for r in realistic)
    # Even with 10x the input's size in samples, most queries see no gain
    # from their median experience (gains concentrate in the covered few).
    assert reports[-1].median_gain_all <= 2.0
