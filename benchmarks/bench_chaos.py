"""Chaos suite: the TPC-DS workload under seeded fault injection.

Acceptance bars (the system's fault-tolerance claims, end to end):

* **Recovery** — with at least one injected crash and one injected
  straggler per query, every one of the 24 TPC-DS queries completes, and
  each recovered answer is *bit-identical* to a fault-free run of the same
  configuration (counter-based sampling makes retried attempts
  deterministic; the straggler's speculative duplicate returns the same
  rows its original would have).
* **Graceful degradation** — a uniform-sampled aggregate that permanently
  loses a partition returns a :class:`PartialResult` whose re-weighted
  Horvitz-Thompson estimates still cover the true (full-data) answer with
  their widened 95% confidence intervals.

Scale is controlled by ``REPRO_CHAOS_SCALE`` (default 0.15 — the bars test
recovery mechanics, not statistical quality at full scale).
"""

import os

import numpy as np

from repro.algebra.aggregates import sum_
from repro.algebra.builder import from_node, scan
from repro.algebra.expressions import col
from repro.algebra.logical import SamplerNode
from repro.core.rewrite import finalize_plan
from repro.engine.executor import Executor, PartialResult
from repro.optimizer.planner import QuickrPlanner
from repro.parallel import FaultPlan, ParallelOptions
from repro.parallel.tasks import RetryPolicy
from repro.samplers.uniform import UniformSpec
from repro.workloads.tpcds import generate_tpcds, queries

SCALE = float(os.environ.get("REPRO_CHAOS_SCALE", "0.15"))
SEED = int(os.environ.get("REPRO_CHAOS_SEED", "7"))
DEGREE = 4
HANG_SECONDS = 0.25

OPTIONS = dict(
    pool="thread",
    # Oversubscribe so 1-core CI machines still run the concurrent
    # scheduler (retries in flight, speculative duplicates) instead of the
    # single-worker inline short-circuit.
    max_workers=DEGREE + 1,
    retry=RetryPolicy(
        backoff_base=0.01,
        speculation_min_seconds=HANG_SECONDS / 2,
        poll_interval=0.005,
    ),
    task_seed=SEED,
)


def bit_identical(a, b) -> bool:
    return (
        a.column_names == b.column_names
        and a.num_rows == b.num_rows
        and all(np.array_equal(a.column(c), b.column(c)) for c in a.column_names)
    )


def test_chaos_suite_every_query_recovers_bit_identical():
    db = generate_tpcds(scale=SCALE, seed=1)
    planner = QuickrPlanner(db)
    executor = Executor(db, parallelism=DEGREE, parallel_options=ParallelOptions(**OPTIONS))
    fleet = executor._parallel_executor()

    recovered = 0
    for index, query in enumerate(queries(db)):
        planned = planner.plan(query).plan

        fleet.options.fault_plan = None
        reference = executor.execute(planned)

        plan = FaultPlan.random(
            seed=SEED * 100 + index,
            num_partitions=DEGREE,
            crashes=1,
            hangs=1,
            hang_seconds=HANG_SECONDS,
        )
        assert plan.summary() == {"crash": 1, "hang": 1}
        fleet.options.fault_plan = plan
        result = executor.execute(planned)

        assert result.parallel is not None, query.name
        if result.parallel.strategy == "serial-fallback":
            # Plans the analyzer declines to parallelize see no faults; the
            # suite's bar applies to the parallelized queries.
            assert bit_identical(reference.table, result.table), query.name
            continue
        assert not result.degraded, query.name
        assert result.parallel.failed_partitions == (), query.name
        assert result.parallel.task_retries >= 1, query.name  # the crash was retried
        assert bit_identical(reference.table, result.table), query.name
        recovered += 1

    assert recovered >= 20  # nearly all of the 24 queries run parallel
    stats = fleet.stats
    assert stats.retries >= recovered
    assert stats.speculative_wins >= 1  # the injected stragglers lost races
    assert stats.failed_tasks == 0


def test_partition_loss_degrades_with_covering_cis():
    db = generate_tpcds(scale=SCALE, seed=1)

    def sales_by_store(spec=None):
        builder = scan(db, "store_sales")
        if spec is not None:
            builder = from_node(SamplerNode(builder.node, spec))
        return (
            builder.groupby("ss_store_sk")
            .agg(sum_(col("ss_ext_sales_price"), "total"))
            .orderby("ss_store_sk")
            .build("sales_by_store")
        )

    truth = Executor(db).execute(sales_by_store()).table

    sampled_plan = finalize_plan(sales_by_store(UniformSpec(0.2, seed=11)).plan)
    executor = Executor(
        db,
        parallelism=DEGREE,
        parallel_options=ParallelOptions(
            fault_plan=FaultPlan.lose_partition(1),
            allow_degraded=True,
            **{**OPTIONS, "retry": RetryPolicy(max_attempts=2, backoff_base=0.01)},
        ),
    )
    result = executor.execute(sampled_plan)

    assert isinstance(result, PartialResult)
    assert result.lost_partitions == (1,)
    assert result.coverage == (DEGREE - 1) / DEGREE
    assert result.reweight_factor == DEGREE / (DEGREE - 1)

    answer = result.table
    assert answer.num_rows == truth.num_rows  # no missed groups
    estimate = answer.column("total")
    ci = answer.column("total__ci")
    expected = truth.column("total")
    # The re-weighted HT estimator is unbiased and its variance algebra
    # consumes the inflated weights, so the widened 95% CIs still cover the
    # full-data answer (allow the nominal miss rate some slack).
    covered = np.abs(estimate - expected) <= ci
    assert covered.mean() >= 0.8, f"CI coverage {covered.mean():.0%}"
    # And the global total is well inside the combined interval.
    assert abs(estimate.sum() - expected.sum()) <= np.sqrt((ci**2).sum())
