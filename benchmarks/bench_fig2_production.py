"""Figure 2: analysis of the (synthetic) production cluster trace.

Regenerates Figure 2a (heavy-tailed input usage) and Figure 2b (query shape
percentiles) and prints them next to the paper's published values.
"""

import numpy as np

from repro.experiments.figures import figure2
from repro.experiments.report import format_table


def test_figure2_production_trace(benchmark):
    data = benchmark.pedantic(lambda: figure2(num_queries=20_000, seed=2016), rounds=1, iterations=1)

    print("\n=== Figure 2a: heavy tail over inputs ===")
    print(f"total input: {data['total_pb']:.0f} PB (paper: ~120 PB)")
    print(
        f"inputs covering half the cluster time: {data['pb_at_half_cluster_time']:.1f} PB "
        "(paper: 20 PB)"
    )

    print("\n=== Figure 2b: production query shape percentiles ===")
    rows = []
    for metric, paper_values in data["paper"].items():
        measured = data["measured"][metric]
        row = {"metric": metric}
        for p in (25, 50, 75, 90, 95):
            row[f"{p}th"] = f"{measured[p]:.1f} ({paper_values[p]:g})"
        rows.append(row)
    print(format_table(rows, "measured (paper)"))

    # Shape assertions: heavy tail + calibrated medians.
    assert data["pb_at_half_cluster_time"] < 0.4 * data["total_pb"]
    for metric in ("passes", "joins", "operators", "qcs_plus_qvs"):
        paper_median = data["paper"][metric][50]
        assert data["measured"][metric][50] == np.float64(data["measured"][metric][50])
        assert paper_median / 2.5 <= data["measured"][metric][50] <= paper_median * 2.5
