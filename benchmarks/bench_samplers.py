"""Sampler micro-benchmarks: per-row throughput of the three samplers.

Appendix A's cost ordering must hold in practice: uniform is cheapest
(a coin flip), universe pays for a strong hash, distinct pays for the
sketch and reservoirs.
"""

import numpy as np
import pytest

from repro.engine.table import Table
from repro.samplers.distinct import DistinctSpec
from repro.samplers.uniform import UniformSpec
from repro.samplers.universe import UniverseSpec

N = 200_000


@pytest.fixture(scope="module")
def big_table():
    rng = np.random.default_rng(0)
    return Table(
        "big",
        {
            "k": rng.integers(0, 5_000, N),
            "x": rng.normal(size=N),
        },
    )


def test_uniform_sampler_throughput(benchmark, big_table):
    spec = UniformSpec(0.1, seed=1)
    result = benchmark(spec.apply, big_table)
    assert result.num_rows == pytest.approx(N * 0.1, rel=0.1)


def test_universe_sampler_throughput(benchmark, big_table):
    spec = UniverseSpec(["k"], 0.1, seed=1)
    result = benchmark(spec.apply, big_table)
    assert 0 < result.num_rows < N


def test_distinct_sampler_throughput(benchmark, big_table):
    spec = DistinctSpec(["k"], delta=10, p=0.1, seed=1)
    result = benchmark(spec.apply, big_table)
    assert result.num_rows < N
