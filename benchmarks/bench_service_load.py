"""Service under load: 100+ concurrent sessions against one shared engine.

Boots the real TCP server in-process, drives it with the load generator
(one connection + session per thread), and holds the service to its three
contracts simultaneously:

* **correctness** — every served answer is byte-for-byte identical to
  running the same query in library mode (fresh planner + executor on the
  same database). Approximation noise comes from seeded samplers, never
  from concurrency.
* **admission control** — the run queue never exceeds its configured
  bound, and overload surfaces as explicit ``rejected.*`` responses (the
  client's request completes with a reason), not hangs: every request is
  accounted served / rejected / error.
* **service levels** — reports qps and client-observed p50/p99 latency,
  written to ``BENCH_service.json`` for trend tracking.

Scale is intentionally small (``REPRO_SERVICE_SCALE``, default 0.05): the
properties under test — bit-identity, bounded queues, explicit rejections
— are scale-independent, and 300+ requests dominate the signal.
"""

import os

from repro.engine.executor import Executor
from repro.optimizer.planner import QuickrPlanner
from repro.service import (
    AdmissionConfig,
    LoadConfig,
    QueryServer,
    QueryService,
    ServiceConfig,
    run_load,
)
from repro.service.protocol import table_digest
from repro.workloads.tpcds import generate_tpcds, query_by_name

SCALE = float(os.environ.get("REPRO_SERVICE_SCALE", "0.05"))
SEED = int(os.environ.get("REPRO_BENCH_SEED", "1"))
SESSIONS = int(os.environ.get("REPRO_SERVICE_SESSIONS", "100"))
QUERIES_PER_SESSION = int(os.environ.get("REPRO_SERVICE_QUERIES", "3"))
OUTPUT = os.environ.get("REPRO_SERVICE_BENCH_OUT", "BENCH_service.json")

QUERY_NAMES = ("q07", "q12", "q22")
MAX_QUEUE_DEPTH = 64


def library_digests(db):
    executor = Executor(db)
    planner = QuickrPlanner(db)
    return {
        name: table_digest(
            executor.execute(planner.plan(query_by_name(db, name)).plan).table
        )
        for name in QUERY_NAMES
    }


def test_service_sustains_100_sessions_bit_identical():
    db = generate_tpcds(scale=SCALE, seed=SEED)
    expected = library_digests(db)
    config = ServiceConfig(
        num_workers=8,
        admission=AdmissionConfig(max_queue_depth=MAX_QUEUE_DEPTH, tenant_quota=32),
    )
    with QueryServer(QueryService(db, config), port=0) as server:
        host, port = server.address
        load = LoadConfig(
            sessions=SESSIONS,
            queries_per_session=QUERIES_PER_SESSION,
            query_names=QUERY_NAMES,
            mode="quickr",
            seed=SEED,
        )
        report = run_load(host, port, load)

    # Every request is accounted for — rejections are explicit, not hangs.
    total_rejected = sum(report.rejected.values())
    assert report.requests == SESSIONS * QUERIES_PER_SESSION
    assert report.served + total_rejected == report.requests
    assert report.errors == 0
    assert report.protocol_errors == 0
    assert report.served > 0

    # Admission control bounded the run queue.
    admission = report.server_stats["admission"]
    assert admission["peak_queue_depth"] <= MAX_QUEUE_DEPTH

    # Bit-identity: under 100-way concurrency, every served answer equals
    # library-mode execution of the same query.
    for name in QUERY_NAMES:
        served = report.digests.get((name, "quickr"))
        if served is not None:
            assert served == {expected[name]}, f"{name} diverged under load"

    percentiles = report.latency_percentiles()
    assert percentiles["p50"] is not None and percentiles["p99"] is not None
    assert report.qps > 0
    report.write_json(
        OUTPUT,
        scale=SCALE,
        workers=config.num_workers,
        query_names=list(QUERY_NAMES),
    )


def test_quota_overload_rejects_explicitly():
    db = generate_tpcds(scale=SCALE, seed=SEED)
    config = ServiceConfig(
        num_workers=2,
        admission=AdmissionConfig(max_queue_depth=64, tenant_quota=2),
    )
    with QueryServer(QueryService(db, config), port=0) as server:
        host, port = server.address
        # 24 sessions of ONE tenant firing together against quota 2: most
        # submissions find the tenant's two slots taken.
        load = LoadConfig(
            sessions=24,
            queries_per_session=2,
            tenants=("burst",),
            query_names=QUERY_NAMES,
            mode="quickr",
            seed=SEED,
        )
        report = run_load(host, port, load)

    total_rejected = sum(report.rejected.values())
    assert report.served + total_rejected == report.requests == 48
    assert report.errors == 0 and report.protocol_errors == 0
    assert report.rejected.get("quota", 0) > 0, report.rejected
    # The service kept serving within quota while rejecting the excess.
    assert report.served > 0
