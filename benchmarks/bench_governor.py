"""Governed overload: deadlines bound the tail, degradation stays honest.

Three acceptance bars for the in-flight query governor, end to end:

* **Bounded tail under overload** — drive far more work at the service
  than its workers can finish inside the per-query deadline. Governed,
  every request resolves (served / degraded / rejected / cancelled —
  nothing unclassified, nothing hung) and the p99 round trip stays within
  the deadline plus one checkpoint's slack. Ungoverned, the same load
  blows straight through the deadline — that gap is the governor's reason
  to exist, and both numbers land in ``BENCH_governor.json``.
* **Degraded replies stay honest** — a reply served one rung down
  (coarsened samplers under pressure) still carries confidence intervals,
  and its global aggregates land inside the combined CI of the exact
  answer. Degrade accuracy, not correctness.
* **Salvage under seeded chaos** — a governed deadline trip mid-flight
  (straggler partitions hung past the deadline) salvages survivors into a
  re-weighted partial answer whose widened CIs cover the full-data truth
  per group, same bar as the chaos suite's partition-loss test.

Hygiene is asserted throughout: zero leaked shared-memory segments and
zero lingering service threads after every run. Scale via
``REPRO_GOVERNOR_SCALE`` (default 0.08; the bars are about governance
mechanics, not statistical power at full scale).
"""

import json
import os
import threading
import time

import numpy as np

from repro.algebra.aggregates import count, sum_
from repro.algebra.builder import from_node, scan
from repro.algebra.expressions import col
from repro.algebra.logical import SamplerNode
from repro.core.rewrite import finalize_plan
from repro.engine.executor import Executor, PartialResult
from repro.engine.governance import GovernanceContext
from repro.errors import AdmissionRejected, GovernanceError
from repro.memory import leaked_system_segments
from repro.optimizer.planner import QuickrPlanner
from repro.parallel import Fault, FaultPlan, ParallelOptions
from repro.parallel.tasks import RetryPolicy
from repro.samplers.uniform import UniformSpec
from repro.service import (
    AdmissionConfig,
    GovernorConfig,
    QueryService,
    ServiceConfig,
)
from repro.service import protocol
from repro.service.loadgen import percentile
from repro.workloads.tpcds import QUERY_BUILDERS, generate_tpcds, query_by_name

SCALE = float(os.environ.get("REPRO_GOVERNOR_SCALE", "0.08"))
SEED = int(os.environ.get("REPRO_GOVERNOR_SEED", "3"))
OUTPUT = os.environ.get("REPRO_GOVERNOR_BENCH_OUT", "BENCH_governor.json")

#: Aggressive relative to the heavy query's multi-second runtime.
DEADLINE_MS = 400.0
#: Checkpoint granularity + plan compile + dispatch jitter past the
#: deadline — the governed tail may exceed the deadline by this much.
SLACK_SECONDS = 0.8
WORKERS = 1
#: Followers: each of the 24 TPC-DS queries exactly once, so the
#: admission EWMA is cold for every request and pre-flight feasibility
#: checks cannot reject on an estimate.
QUERY_MIX = tuple(QUERY_BUILDERS)
#: Union-amplified join tree: ~2 s of real engine work at the default
#: scale. Submitted first with a head start so it is *dispatched* before
#: its deadline expires — the case PR-5's queue-expiry drop cannot catch
#: and only a mid-flight checkpoint can. Ungoverned, the worker grinds it
#: to completion long past the deadline while everything queues behind.
HEAVY_REPS = 24
REQUESTS = len(QUERY_MIX) + 1

_DB = None


def database():
    global _DB
    if _DB is None:
        _DB = generate_tpcds(scale=SCALE, seed=SEED)
    return _DB


def heavy_builder(db):
    def one_branch():
        return (
            scan(db, "store_sales")
            .join(scan(db, "item"), on=[("ss_item_sk", "i_item_sk")])
            .join(scan(db, "date_dim"), on=[("ss_sold_date_sk", "d_date_sk")])
        )

    branches = [one_branch() for _ in range(HEAVY_REPS - 1)]
    return (
        one_branch()
        .union_all(*branches)
        .groupby("i_category", "d_year", "d_moy", "ss_store_sk")
        .agg(sum_(col("ss_ext_sales_price"), "total"), count("n"))
        .orderby("i_category")
        .build("heavy")
    )


def governed_service(db, enabled=True, builders=None, **governor_kwargs):
    config = ServiceConfig(
        num_workers=WORKERS,
        admission=AdmissionConfig(max_queue_depth=64, tenant_quota=32),
        governor=GovernorConfig(enabled=enabled, **governor_kwargs),
    )
    return QueryService(db, config, query_builders=builders)


def drive_overload(service):
    """One heavy query, then REQUESTS-1 followers; every outcome classified."""
    outcomes = {}
    latencies = []
    lock = threading.Lock()
    followers = len(QUERY_MIX)
    barrier = threading.Barrier(followers)

    def run_one(index, name):
        session = service.open_session(tenant=f"tenant{index % 4}")
        t0 = time.perf_counter()
        try:
            payload = service.execute(
                session, name, mode="quickr", deadline_ms=DEADLINE_MS, timeout=120.0
            )
            # Tag degraded replies with the rung that served them, so the
            # report distinguishes "degraded by sampler coarsening"
            # (quickr-coarse) from "degraded by partition selection"
            # (quickr-select) from mid-flight salvage (partial).
            outcome = (
                "served"
                if payload["degraded"] is None
                else f"degraded.{payload['degraded']['rung']}"
            )
        except AdmissionRejected as exc:
            outcome = f"rejected.{exc.reason}"
        except GovernanceError as exc:
            outcome = f"cancelled.{exc.reason_code}"
        elapsed = time.perf_counter() - t0
        with lock:
            outcomes[outcome] = outcomes.get(outcome, 0) + 1
            latencies.append(elapsed)

    def follower(index):
        barrier.wait()
        run_one(index, QUERY_MIX[index % len(QUERY_MIX)])

    heavy = threading.Thread(target=run_one, args=(0, "heavy"))
    heavy.start()
    time.sleep(0.15)  # let the heavy query reach the worker first
    threads = [threading.Thread(target=follower, args=(i,)) for i in range(followers)]
    for thread in threads:
        thread.start()
    for thread in [heavy] + threads:
        thread.join(timeout=300.0)
    assert not heavy.is_alive(), "hung heavy-request thread"
    assert not any(thread.is_alive() for thread in threads), "hung request thread"
    return outcomes, latencies


def assert_clean_exit(service, before_threads):
    service.close()
    deadline = time.monotonic() + 10.0
    while True:
        lingering = [
            t for t in threading.enumerate() if t.is_alive() and t not in before_threads
        ]
        if not lingering:
            break
        assert time.monotonic() < deadline, f"hung threads: {lingering}"
        time.sleep(0.05)
    assert leaked_system_segments() == []


def test_governed_overload_bounds_p99_vs_ungoverned_baseline():
    db = database()
    runs = {}
    builders = {**QUERY_BUILDERS, "heavy": heavy_builder}
    for label, enabled in (("governed", True), ("ungoverned", False)):
        before = set(threading.enumerate())
        service = governed_service(db, enabled=enabled, builders=builders).start()
        outcomes, latencies = drive_overload(service)
        stats = service.stats()
        assert_clean_exit(service, before)

        # Every reply classified; overload never surfaces as a raw error.
        assert sum(outcomes.values()) == REQUESTS, outcomes
        assert len(latencies) == REQUESTS
        assert all(
            key.split(".")[0] in ("served", "degraded", "rejected", "cancelled")
            for key in outcomes
        ), outcomes
        runs[label] = {
            "outcomes": dict(sorted(outcomes.items())),
            "p50_seconds": round(percentile(latencies, 0.50), 4),
            "p99_seconds": round(percentile(latencies, 0.99), 4),
            "max_seconds": round(max(latencies), 4),
            "governor": stats["governor"],
        }

    bound = DEADLINE_MS / 1000.0 + SLACK_SECONDS
    governed, ungoverned = runs["governed"], runs["ungoverned"]
    # The governor's bar: the whole tail resolves near the deadline.
    assert governed["p99_seconds"] <= bound, runs
    # The contrast that motivates it: the ungoverned baseline, identical
    # load, blows through (queueing alone exceeds the deadline).
    assert ungoverned["p99_seconds"] > bound, runs
    assert governed["p99_seconds"] < ungoverned["p99_seconds"]
    # The governed run actually exercised the machinery, not a fluke of
    # fast queries: deadlines fired and/or the ladder degraded replies.
    moved = (
        governed["governor"]["cancelled"] + governed["governor"]["degraded_replies"]
    )
    assert moved > 0, runs

    from repro.experiments.report import bench_envelope

    with open(OUTPUT, "w", encoding="utf-8") as fh:
        json.dump(
            bench_envelope(
                "governor",
                {"runs": runs},
                scale=SCALE,
                seed=SEED,
                deadline_ms=DEADLINE_MS,
                slack_seconds=SLACK_SECONDS,
                requests=REQUESTS,
                workers=WORKERS,
                query_mix=list(QUERY_MIX),
            ),
            fh,
            indent=2,
            sort_keys=True,
        )


def test_degraded_replies_cover_exact_totals():
    # Permanent pressure: every coarsenable query serves one rung down.
    # The bar: a degraded reply's global aggregates stay inside the
    # combined 95% CI of the exact answer — coarser, wider, still honest.
    db = database()
    executor = Executor(db)
    planner = QuickrPlanner(db)
    before = set(threading.enumerate())
    service = governed_service(db, queue_pressure_fraction=0.0).start()
    try:
        session = service.open_session(tenant="coverage")
        checked = 0
        for name in ("q15", "q19", "q22"):
            payload = service.execute(session, name, mode="quickr", timeout=120.0)
            assert payload["degraded"] is not None, name
            assert payload["degraded"]["rung"] == "quickr-coarse", name
            answer = protocol.table_from_wire(payload["answer"])
            exact = executor.execute(
                planner.plan_baseline(query_by_name(db, name)).plan
            ).table
            ci_columns = [c for c in answer.column_names if c.endswith("__ci")]
            assert ci_columns, f"{name}: degraded reply carries no CIs"
            for ci_name in ci_columns:
                value = ci_name[: -len("__ci")]
                estimate = answer.column(value)
                ci = answer.column(ci_name)
                expected = float(np.sum(exact.column(value)))
                combined = float(np.sqrt(np.sum(ci.astype(float) ** 2)))
                assert abs(float(np.sum(estimate)) - expected) <= combined, (
                    f"{name}.{value}: degraded total outside combined CI"
                )
                checked += 1
        assert checked >= 6
    finally:
        assert_clean_exit(service, before)


def test_deadline_salvage_covers_truth_per_group():
    # Seeded chaos: two straggler partitions hang past the deadline; the
    # governed abort salvages the survivors. Same coverage bar as the
    # chaos suite's partition-loss test, reached via governance.
    db = database()

    def sales_by_item(spec=None):
        builder = scan(db, "store_sales")
        if spec is not None:
            builder = from_node(SamplerNode(builder.node, spec))
        return (
            builder.groupby("ss_item_sk")
            .agg(sum_(col("ss_ext_sales_price"), "total"))
            .orderby("ss_item_sk")
            .build("sales_by_item")
        )

    truth = Executor(db).execute(sales_by_item()).table
    plan = finalize_plan(sales_by_item(UniformSpec(0.4, seed=7)).plan)
    executor = Executor(
        db,
        parallelism=4,
        parallel_options=ParallelOptions(
            pool="thread",
            max_workers=5,  # oversubscribe for 1-core CI
            allow_degraded=True,
            fault_plan=FaultPlan(
                [Fault(part, 0, "hang", seconds=3.0) for part in (2, 3)]
            ),
            retry=RetryPolicy(
                backoff_base=0.005, backoff_max=0.05, poll_interval=0.005,
                speculate=False,
            ),
        ),
    )
    result = executor.execute(plan, governance=GovernanceContext.with_timeout(0.6))

    assert isinstance(result, PartialResult)
    assert result.abort_reason == "deadline"
    assert set(result.lost_partitions) == {2, 3}

    answer = result.table
    index = {key: i for i, key in enumerate(truth.column("ss_item_sk").tolist())}
    matched = [index[key] for key in answer.column("ss_item_sk").tolist()]
    assert len(matched) >= 0.8 * truth.num_rows  # survivors keep most groups
    estimate = answer.column("total")
    ci = answer.column("total__ci")
    expected = truth.column("total")[matched]
    covered = np.abs(estimate - expected) <= ci
    # Nominal 95% minus miss-rate slack at this tiny scale (the chaos
    # bench holds the same estimator to 0.8 at its larger default scale).
    assert covered.mean() >= 0.75, f"CI coverage {covered.mean():.0%}"
    assert abs(estimate.sum() - expected.sum()) <= np.sqrt((ci**2).sum())
    assert leaked_system_segments() == []


def test_selection_rung_attributed_distinctly():
    """Degradation by partition selection is distinguishable from
    degradation by sampler coarsening — in the reply's rung and in
    ``BENCH_governor.json``.

    Permanent pressure with no coarsening headroom (``coarsen_factor=1.0``)
    makes the ladder walk past ``quickr-coarse``: weighted-sampled plans
    land on ``quickr-select`` (the catalog's weighted partition selection),
    while distinct-only plans — which selection cannot serve — stay at full
    accuracy instead of degrading wrongly.
    """
    db = database()
    before = set(threading.enumerate())
    service = governed_service(
        db, queue_pressure_fraction=0.0, coarsen_factor=1.0
    ).start()
    rungs = {}
    try:
        session = service.open_session(tenant="attribution")
        for name in ("q15", "q19", "q22", "q02"):
            payload = service.execute(session, name, mode="quickr", timeout=120.0)
            rungs[name] = (
                None if payload["degraded"] is None else payload["degraded"]["rung"]
            )
    finally:
        assert_clean_exit(service, before)

    for name in ("q15", "q19", "q22"):  # uniform/universe-sampled plans
        assert rungs[name] == "quickr-select", rungs
    assert rungs["q02"] is None, rungs  # distinct-only: no selection rung

    # Merge the attribution into the benchmark report (the overload test
    # writes the file first when the whole module runs).
    from repro.experiments.report import bench_envelope, load_bench

    try:
        payload = load_bench(OUTPUT)
    except (FileNotFoundError, json.JSONDecodeError):
        payload = bench_envelope("governor", {})
    if not isinstance(payload.get("series"), dict):
        payload = bench_envelope("governor", {})
    payload["meta"]["bench"] = "governor"
    payload["series"]["selection_attribution"] = {
        "config": {"queue_pressure_fraction": 0.0, "coarsen_factor": 1.0},
        "rungs": {name: rung or "served-exactly" for name, rung in rungs.items()},
    }
    with open(OUTPUT, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
