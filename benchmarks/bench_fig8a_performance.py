"""Figure 8a: Baseline/Quickr performance ratios over TPC-DS.

Paper: median machine-hours gain > 2x, runtime ~1.6x, ~20% of queries gain
more than 3x; a handful exceed 6x. Our laptop-scale shape: the median gain
grows with REPRO_BENCH_SCALE (supports grow, more samplers clear the
accuracy bar); what must hold at any scale is who wins and where the tail
is — fact-fact universe plans gain several-fold, star queries gain
modestly, unapproximable queries sit at 1x.
"""

import numpy as np

from repro.experiments.figures import figure8a_performance
from repro.experiments.report import format_table


def test_figure8a_performance(benchmark, outcomes):
    data = benchmark.pedantic(lambda: figure8a_performance(outcomes), rounds=1, iterations=1)

    print("\n=== Figure 8a: Baseline/Quickr gain medians ===")
    print(
        format_table(
            [
                {
                    "metric": name,
                    "median_gain": f"{value:.2f}x",
                }
                for name, value in data["median"].items()
            ]
        )
    )
    print(f"fraction of queries with >2x machine-hours gain: {data['fraction_mh_gain_over_2x']:.0%}")
    print(f"fraction with >3x gain (paper ~20%): {data['fraction_mh_gain_over_3x']:.0%}")
    print(f"fraction regressed (paper: small): {data['fraction_regressed']:.0%}")

    values, fractions = data["cdf"]["machine_hours"]
    print("\nmachine-hours gain CDF:")
    for v, f in zip(values, fractions):
        print(f"  gain {v:6.2f}x  <= {f:.0%} of queries")

    # Shape assertions.
    assert data["median"]["machine_hours"] >= 1.0
    assert data["fraction_mh_gain_over_3x"] >= 0.08   # a real >3x tail exists
    assert values.max() >= 3.0                         # best queries gain severalfold
    assert data["fraction_regressed"] <= 0.25
