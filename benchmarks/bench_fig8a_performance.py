"""Figure 8a: Baseline/Quickr performance ratios over TPC-DS.

Paper: median machine-hours gain > 2x, runtime ~1.6x, ~20% of queries gain
more than 3x; a handful exceed 6x. Our laptop-scale shape: the median gain
grows with REPRO_BENCH_SCALE (supports grow, more samplers clear the
accuracy bar); what must hold at any scale is who wins and where the tail
is — fact-fact universe plans gain several-fold, star queries gain
modestly, unapproximable queries sit at 1x.
"""

from time import perf_counter

import numpy as np

from repro.engine.executor import Executor
from repro.experiments.figures import figure8a_performance
from repro.experiments.report import format_table
from repro.obs import trace as obs_trace
from repro.optimizer.planner import QuickrPlanner
from repro.parallel import ParallelOptions, available_parallelism


def test_figure8a_performance(benchmark, outcomes):
    data = benchmark.pedantic(lambda: figure8a_performance(outcomes), rounds=1, iterations=1)

    print("\n=== Figure 8a: Baseline/Quickr gain medians ===")
    print(
        format_table(
            [
                {
                    "metric": name,
                    "median_gain": f"{value:.2f}x",
                }
                for name, value in data["median"].items()
            ]
        )
    )
    print(f"fraction of queries with >2x machine-hours gain: {data['fraction_mh_gain_over_2x']:.0%}")
    print(f"fraction with >3x gain (paper ~20%): {data['fraction_mh_gain_over_3x']:.0%}")
    print(f"fraction regressed (paper: small): {data['fraction_regressed']:.0%}")

    values, fractions = data["cdf"]["machine_hours"]
    print("\nmachine-hours gain CDF:")
    for v, f in zip(values, fractions):
        print(f"  gain {v:6.2f}x  <= {f:.0%} of queries")

    # Shape assertions.
    assert data["median"]["machine_hours"] >= 1.0
    assert data["fraction_mh_gain_over_3x"] >= 0.08   # a real >3x tail exists
    assert values.max() >= 3.0                         # best queries gain severalfold
    assert data["fraction_regressed"] <= 0.25


DEGREE = 4


def test_figure8a_parallel_speedup(benchmark, tpcds_db, tpcds_queries):
    """Partition-parallel execution of the Figure 8a workload.

    Correctness bar: every parallelized uniform/universe plan must be
    bit-identical to its serial run (row merge restores exact serial order;
    counter-based samplers make identical per-row decisions). Performance
    bar: the cluster model must predict >= 2x at D=4 for the median
    parallelized query; measured wall-clock speedup is additionally
    asserted >= 2x when the host actually has >= 4 usable cores.
    """
    planner = QuickrPlanner(tpcds_db)
    plans = [(q.name, planner.plan(q)) for q in tpcds_queries]

    serial_exec = Executor(tpcds_db)
    parallel_exec = Executor(
        tpcds_db,
        parallelism=DEGREE,
        parallel_options=ParallelOptions(pool="auto", merge="rows"),
    )

    t0 = perf_counter()
    serial_results = {name: serial_exec.execute(planned.plan) for name, planned in plans}
    serial_seconds = perf_counter() - t0

    t0 = perf_counter()
    parallel_results = benchmark.pedantic(
        lambda: {name: parallel_exec.execute(planned.plan) for name, planned in plans},
        rounds=1,
        iterations=1,
    )
    parallel_seconds = perf_counter() - t0

    rows = []
    modeled = []
    mismatched = []
    for name, planned in plans:
        serial, parallel = serial_results[name], parallel_results[name]
        metrics = parallel.parallel
        parallelized = metrics.strategy != "serial-fallback"
        deterministic = parallelized and "distinct" not in planned.sampler_kinds()
        if deterministic:
            same = serial.table.num_rows == parallel.table.num_rows and all(
                np.array_equal(
                    serial.table.column(c),
                    parallel.table.column(c),
                    equal_nan=serial.table.column(c).dtype.kind == "f",
                )
                for c in serial.table.column_names
            )
            if not same:
                mismatched.append(name)
        if parallelized:
            modeled.append(metrics.modeled_speedup)
        rows.append(
            {
                "query": name,
                "strategy": metrics.strategy,
                "modeled": f"{metrics.modeled_speedup:.2f}x",
                "identical": "yes" if deterministic else ("n/a" if not parallelized else "stat"),
            }
        )

    print(f"\n=== Figure 8a workload at parallelism={DEGREE} ===")
    print(format_table(rows))
    cores = available_parallelism()
    measured = serial_seconds / max(parallel_seconds, 1e-9)
    print(f"serial {serial_seconds:.2f}s, parallel {parallel_seconds:.2f}s "
          f"-> measured speedup {measured:.2f}x on {cores} core(s); "
          f"median modeled speedup {np.median(modeled):.2f}x")

    assert not mismatched, f"parallel answers diverged from serial: {mismatched}"
    assert len(modeled) >= len(plans) // 2      # most queries actually parallelize
    assert np.median(modeled) >= 2.0            # cluster model: >= 2x at D=4
    if cores >= DEGREE:
        assert measured >= 2.0, f"wall-clock speedup {measured:.2f}x below 2x on {cores} cores"


#: Instrumentation budget: median per-query wall-clock with tracing on may
#: exceed tracing off by at most this factor.
MAX_TRACING_OVERHEAD = 1.05
TRACING_ROUNDS = 3


def test_tracing_overhead(tpcds_db, tpcds_queries):
    """Span instrumentation must stay off the hot path.

    Runs every Figure 8a query with the tracer disabled and enabled
    (fresh tracer per run, so span buffers never amortize), taking the
    min of a few rounds per mode to suppress scheduler noise, and asserts
    the median per-query on/off ratio stays under 5%.

    The "on" phase additionally runs a concurrent OpenMetrics scraper
    against the executor's live registry — the production configuration
    is tracer + scrape endpoint, and the snapshot locks must not show up
    in query wall-clock either.
    """
    import threading

    from repro.obs.export import render_openmetrics, validate_openmetrics

    planner = QuickrPlanner(tpcds_db)
    plans = [planner.plan(q).plan for q in tpcds_queries]
    executor = Executor(tpcds_db)
    for plan in plans:  # warm the compile cache: measure execution, not lowering
        executor.execute(plan)

    def timed_run(plan) -> float:
        t0 = perf_counter()
        executor.execute(plan)
        return perf_counter() - t0

    stop_scraping = threading.Event()
    scrapes = [0]
    scrape_problems = []

    def scraper():
        # Failures are collected, not asserted: an assert here would only
        # kill this thread, invisibly to pytest.
        while not stop_scraping.is_set():
            problems = validate_openmetrics(render_openmetrics(executor.registry))
            if problems:
                scrape_problems.extend(problems[:3])
                return
            scrapes[0] += 1
            # Production scrapers poll on a seconds cadence; 0.25s still
            # lands a scrape inside every measured phase without the
            # render itself dominating a single-core ratio.
            stop_scraping.wait(0.25)

    ratios = []
    for plan in plans:
        off = min(timed_run(plan) for _ in range(TRACING_ROUNDS))
        on_times = []
        stop_scraping.clear()
        thread = threading.Thread(target=scraper, name="bench-scraper", daemon=True)
        thread.start()
        try:
            for _ in range(TRACING_ROUNDS):
                tracer = obs_trace.Tracer()
                obs_trace.set_tracer(tracer)
                try:
                    on_times.append(timed_run(plan))
                finally:
                    obs_trace.set_tracer(None)
        finally:
            stop_scraping.set()
            thread.join(timeout=10.0)
        assert not thread.is_alive(), "scraper thread hung"
        assert not scrape_problems, scrape_problems
        ratios.append(min(on_times) / max(off, 1e-9))

    median = float(np.median(ratios))
    print(f"\ntracing overhead: median {median:.3f}x, worst {max(ratios):.3f}x "
          f"over {len(plans)} queries ({TRACING_ROUNDS} rounds each, "
          f"{scrapes[0]} concurrent scrapes)")
    assert scrapes[0] > 0, "exporter never scraped during the traced phase"
    assert median <= MAX_TRACING_OVERHEAD, (
        f"median tracing overhead {median:.3f}x exceeds {MAX_TRACING_OVERHEAD}x"
    )
