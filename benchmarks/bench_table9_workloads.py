"""Table 9: query attributes across TPC-DS, TPC-H and 'Other' benchmarks.

Paper: TPC-DS queries are the most complex of the public benchmarks (most
joins, largest QCS), which is why the evaluation uses TPC-DS; TPC-H and
the Other bucket are simpler.
"""

from repro.experiments.figures import table9_workload_comparison
from repro.experiments.report import format_table, percentile_row


def test_table9_workload_comparison(benchmark):
    data = benchmark.pedantic(lambda: table9_workload_comparison(scale=0.15), rounds=1, iterations=1)

    print("\n=== Table 9: 50th / 90th percentile query attributes ===")
    rows = []
    for metric in ("passes", "total_over_first_pass", "aggregation_ops", "joins", "depth", "qcs_plus_qvs", "qcs"):
        row = {"metric": metric}
        for workload, metrics in data.items():
            pct = percentile_row(metrics[metric], (50, 90))
            row[workload] = f"{pct[50]:.1f} / {pct[90]:.1f}"
        rows.append(row)
    print(format_table(rows))

    # Shape: TPC-DS is the most join-heavy and widest-QCS workload.
    tpcds_joins = percentile_row(data["TPC-DS"]["joins"], (50,))[50]
    tpch_joins = percentile_row(data["TPC-H"]["joins"], (50,))[50]
    other_joins = percentile_row(data["Other"]["joins"], (50,))[50]
    assert tpcds_joins >= tpch_joins >= other_joins

    tpcds_qcs = percentile_row(data["TPC-DS"]["qcs_plus_qvs"], (90,))[90]
    other_qcs = percentile_row(data["Other"]["qcs_plus_qvs"], (90,))[90]
    assert tpcds_qcs >= other_qcs
