"""Figure 9: unrolling the Figure 1 plan via the dominance rules.

The accuracy analysis replaces the motivating query's multi-sampler plan
(universe samplers across the fact tables) with a single equivalent
universe sampler just below the aggregation, applying V3a/V3b/U2-style
steps along the way.
"""

from repro.experiments.figures import figure9_unrolling
from repro.workloads.tpcds import query_by_name


def test_figure9_dominance_unrolling(benchmark, tpcds_db):
    data = benchmark.pedantic(
        lambda: figure9_unrolling(tpcds_db, query_by_name(tpcds_db, "q12")), rounds=1, iterations=1
    )

    print("\n=== Figure 9: unrolling the Figure 1 query ===")
    print(f"approximable: {data['approximable']}, samplers: {data['samplers']}")
    print(f"equivalent at-root sampler: {data['unrolled_kind']} (p={data['unrolled_p']})")
    for rule, operator, detail in data["steps"]:
        print(f"  [{rule}] across {operator}: {detail}")

    assert data["approximable"]
    assert data["samplers"].count("universe") >= 2
    assert data["unrolled_kind"] == "universe"
    rules_used = {rule for rule, _op, _detail in data["steps"]}
    assert "V3a" in rules_used  # paired universe samplers collapse at the join
