"""Figure 8c: correlating performance gains with query aspects.

Paper: gains grow when samplers are close to the sources, when queries are
deeper (more passes, higher Total/First-pass time), and when intermediate
data shrinks most.
"""


from repro.experiments.figures import figure8c_correlation
from repro.experiments.report import format_table


def test_figure8c_correlation(benchmark, outcomes):
    data = benchmark.pedantic(
        lambda: figure8c_correlation(outcomes, num_buckets=4), rounds=1, iterations=1
    )

    print("\n=== Figure 8c: query aspects per machine-hours-gain bucket ===")
    print(
        format_table(
            [
                {k: f"{v:.2f}" for k, v in bucket.items()}
                for bucket in data["buckets"]
            ]
        )
    )

    buckets = data["buckets"]
    assert len(buckets) >= 2
    gains = [b["gain_bucket_mean"] for b in buckets]
    passes = [b["passes"] for b in buckets]
    reductions = [b["intermediate_reduction"] for b in buckets]

    # Deeper queries (more passes) gain more: the top bucket beats the
    # bottom bucket on passes and on intermediate-data reduction.
    assert gains[-1] > gains[0]
    assert passes[-1] >= passes[0] - 1e-9
    assert reductions[-1] >= reductions[0] - 1e-9
