"""Table 8: aggregate rewrites give unbiased estimates.

Verifies, by Monte-Carlo over sampler seeds, that each rewritten estimator
(SUM(w*x), SUM(w), ratio for AVG, conditional forms, and COUNT DISTINCT
with universe rescaling) recovers the true value in expectation.
"""

import numpy as np

from repro.algebra.aggregates import avg, count, count_distinct, count_if, sum_, sum_if
from repro.algebra.expressions import col
from repro.engine import operators
from repro.engine.table import Table
from repro.experiments.report import format_table
from repro.samplers.uniform import UniformSpec
from repro.samplers.universe import UniverseSpec


def _population(rng, n=20_000):
    return Table(
        "pop",
        {
            "g": rng.integers(0, 4, n),
            "x": rng.exponential(10.0, n),
            "c": rng.integers(0, 50, n),
            "flag": rng.integers(0, 2, n),
        },
    )


def test_table8_rewrites_unbiased(benchmark):
    rng = np.random.default_rng(8)
    table = _population(rng)
    aggs = [
        sum_(col("x"), "sum_x"),
        count("count_star"),
        avg(col("x"), "avg_x"),
        sum_if(col("x"), col("flag") == 1, "sumif_x"),
        count_if(col("flag") == 1, "countif"),
    ]
    exact = operators.execute_aggregate(table, [], aggs)

    def run():
        estimates = {a.alias: [] for a in aggs}
        cd_estimates = []
        for seed in range(60):
            sample = UniformSpec(0.1, seed=seed).apply(table)
            out = operators.execute_aggregate(sample, [], aggs)
            for a in aggs:
                estimates[a.alias].append(float(out.column(a.alias)[0]))
            # COUNT DISTINCT under universe sampling on the counted column.
            usample = UniverseSpec(["c"], 0.2, seed=seed).apply(table)
            uout = operators.execute_aggregate(
                usample, [], [count_distinct(col("c"), "uniq")], universe_rescale={"uniq": 5.0}
            )
            cd_estimates.append(float(uout.column("uniq")[0]))
        return estimates, cd_estimates

    estimates, cd_estimates = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\n=== Table 8: estimator rewrites, true vs mean estimate ===")
    rows = []
    for alias in estimates:
        truth = float(exact.column(alias)[0])
        mean = float(np.mean(estimates[alias]))
        rows.append({"aggregate": alias, "true": f"{truth:.1f}", "mean_estimate": f"{mean:.1f}"})
        assert mean == np.float64(mean)
        assert abs(mean - truth) <= 0.05 * abs(truth) + 1e-9, alias
    cd_truth = len(np.unique(table.column("c")))
    cd_mean = float(np.mean(cd_estimates))
    rows.append({"aggregate": "count_distinct (universe)", "true": str(cd_truth), "mean_estimate": f"{cd_mean:.1f}"})
    print(format_table(rows))
    assert cd_mean == np.float64(cd_mean)
    assert abs(cd_mean - cd_truth) <= 0.1 * cd_truth
