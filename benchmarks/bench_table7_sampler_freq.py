"""Table 7: frequency of use of the three samplers.

Paper: uniform 54%, distinct 26%, universe 20% of all sampler instances;
uniform is used roughly twice as often as each of the others, and universe
appears only for queries joining large relations.
"""

from repro.experiments.figures import table7_sampler_frequency
from repro.experiments.report import format_table


def test_table7_sampler_frequency(benchmark, outcomes):
    data = benchmark.pedantic(lambda: table7_sampler_frequency(outcomes), rounds=1, iterations=1)

    print("\n=== Table 7: sampler type distribution (paper: U 54% / D 26% / V 20%) ===")
    print(format_table([{k: f"{v:.0%}" for k, v in data["distribution_across_samplers"].items()}]))
    print("=== queries using at least one sampler of each type (paper: 49/24/9%) ===")
    print(format_table([{k: f"{v:.0%}" for k, v in data["queries_using_type"].items()}]))

    dist = data["distribution_across_samplers"]
    # All three samplers are exercised and uniform is the most common.
    assert all(dist[kind] > 0 for kind in ("uniform", "distinct", "universe"))
    assert dist["uniform"] >= max(dist["distinct"], dist["universe"]) - 0.15

    # Universe appears only in fact-fact join queries.
    universe_queries = [o.name for o in outcomes if "universe" in o.sampler_kinds]
    assert set(universe_queries) <= {"q11", "q12", "q13", "q14"}
