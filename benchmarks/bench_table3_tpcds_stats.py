"""Table 3: characteristics of the TPC-DS queries used in evaluation."""

from repro.experiments.figures import table3_shape_stats
from repro.experiments.report import format_table, percentile_row


def test_table3_query_characteristics(benchmark, tpcds_db, tpcds_queries):
    data = benchmark.pedantic(
        lambda: table3_shape_stats(tpcds_db, tpcds_queries), rounds=1, iterations=1
    )
    measured, paper = data["measured"], data["paper"]

    print("\n=== Table 3: TPC-DS query characteristics, measured (paper) ===")
    rows = []
    for metric, values in measured.items():
        pct = percentile_row(values, (10, 25, 50, 75, 90, 95))
        row = {"metric": metric}
        for p, v in pct.items():
            paper_v = paper.get(metric, {}).get(p, "-")
            row[f"{p}th"] = f"{v:.1f} ({paper_v})"
        rows.append(row)
    print(format_table(rows))

    # Shape: queries make >= 1 pass, have joins, and modest QCS sizes —
    # simpler than the production trace, as the paper observes.
    med = percentile_row(measured["passes"], (50,))[50]
    assert med >= 1.0
    assert percentile_row(measured["joins"], (50,))[50] >= 2
    assert percentile_row(measured["qcs"], (50,))[50] <= 12
