"""Shared benchmark fixtures.

The evaluation scale is controlled by ``REPRO_BENCH_SCALE`` (default 0.3):
larger scales reproduce the paper's gain profile more faithfully (supports
grow, more queries clear the accuracy bar) at the cost of wall-clock time.
The heavy work — running all 24 TPC-DS queries exactly and approximately —
happens once per session and is shared by every benchmark file.
"""

import os

import pytest

from repro.experiments.runner import ExperimentRunner
from repro.workloads.tpcds import generate_tpcds, queries

DEFAULT_BENCH_SCALE = 0.3
DEFAULT_BENCH_SEED = 1


def bench_scale() -> float:
    """Evaluation scale, read from the environment at call time so test
    harnesses that set ``REPRO_BENCH_SCALE`` after import still win."""
    return float(os.environ.get("REPRO_BENCH_SCALE", str(DEFAULT_BENCH_SCALE)))


def bench_seed() -> int:
    return int(os.environ.get("REPRO_BENCH_SEED", str(DEFAULT_BENCH_SEED)))


@pytest.fixture(scope="session")
def tpcds_db():
    return generate_tpcds(scale=bench_scale(), seed=bench_seed())


@pytest.fixture(scope="session")
def tpcds_queries(tpcds_db):
    return queries(tpcds_db)


@pytest.fixture(scope="session")
def outcomes(tpcds_db, tpcds_queries):
    """All 24 queries measured exactly and approximately (shared)."""
    runner = ExperimentRunner(tpcds_db)
    return runner.run_suite(tpcds_queries)
