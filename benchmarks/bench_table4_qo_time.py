"""Table 4: query-optimization times, Baseline vs Quickr.

The paper reports that reasoning about samplers natively adds under 0.1 s
to optimization. We measure both planners over the full suite.
"""

from repro.experiments.figures import table4_qo_times
from repro.experiments.report import format_table


def test_table4_qo_times(benchmark, outcomes):
    data = benchmark.pedantic(lambda: table4_qo_times(outcomes), rounds=1, iterations=1)

    print("\n=== Table 4: QO times (seconds) ===")
    rows = []
    for name in ("baseline_qo_seconds", "quickr_qo_seconds"):
        row = {"planner": name}
        for p, v in data[name].items():
            row[f"{p}th"] = f"{v:.4f}"
        rows.append(row)
    print(format_table(rows))
    print(f"median Quickr overhead: {data['median_overhead_seconds']:.4f}s (paper: < 0.1s)")

    # Quickr's extra exploration must stay cheap (well under a second).
    assert data["quickr_qo_seconds"][50] < 1.0
    assert data["median_overhead_seconds"] < 0.5
