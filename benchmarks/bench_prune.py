"""Partition-pruning perf bar: the catalog must actually skip data.

Acceptance bars (the prune/select pass's claims, end to end — DESIGN §14):

* **Zero drift** — every one of the 24 TPC-DS queries answers
  bit-identically with pruning on and off; exact pruning is a pure
  optimization.
* **Skip rate** — on the selective-predicate subset (date/semi-join
  predicates that separate under the date clustering) at least
  ``SKIP_BAR`` of the fact partitions are pruned exactly
  (``REPRO_PRUNE_SKIP_BAR``, default 0.40 per the issue).
* **Honest selection** — weighted partition selection on the
  uniform-sampled queries executes strictly fewer partitions than
  survive exact pruning, and the reported confidence intervals still
  cover the exact (baseline) answers.

The full report — per-query prune decisions, rows skipped, machine-hours
credit, selection coverage — is written to ``BENCH_prune.json``
(``REPRO_PRUNE_BENCH_OUT``) for trend tracking.
"""

import json
import os

import numpy as np

from repro.engine.executor import Executor
from repro.engine.operators import CI_SUFFIX
from repro.optimizer.planner import QuickrPlanner
from repro.parallel import ParallelOptions
from repro.workloads.tpcds import generate_tpcds, queries, query_by_name

SCALE = float(os.environ.get("REPRO_PRUNE_SCALE", "0.08"))
SEED = int(os.environ.get("REPRO_PRUNE_SEED", "3"))
DEGREE = 8
SKIP_BAR = float(os.environ.get("REPRO_PRUNE_SKIP_BAR", "0.40"))
OUTPUT = os.environ.get("REPRO_PRUNE_BENCH_OUT", "BENCH_prune.json")

#: Queries whose predicates/semi-joins separate under the date clustering
#: at the benchmark scale — the skip-rate bar is held over these.
SELECTIVE = ("q07", "q08", "q09", "q16")

#: Uniform-sampled aggregates: the weighted-selection bars run on these.
SELECTION_QUERIES = ("q15", "q19")

SELECTION_FRACTION = 0.5


def options(**overrides):
    base = dict(pool="thread", merge="rows", min_partition_rows=1_000)
    base.update(overrides)
    return ParallelOptions(**base)


def tables_identical(a, b):
    if a.column_names != b.column_names or a.num_rows != b.num_rows:
        return False
    return all(np.array_equal(a.column(c), b.column(c)) for c in a.column_names)


def ci_coverage(estimate, exact):
    """Fraction of aggregate cells whose CI half-width covers the exact
    value; group rows are aligned on the non-aggregate key columns."""
    ci_cols = [c for c in estimate.column_names if c.endswith(CI_SUFFIX)]
    agg_cols = [c[: -len(CI_SUFFIX)] for c in ci_cols]
    key_cols = [
        c for c in estimate.column_names if c not in agg_cols and not c.endswith(CI_SUFFIX)
    ]
    exact_by_key = {
        tuple(exact.column(k)[i] for k in key_cols): i for i in range(exact.num_rows)
    }
    covered = checked = 0
    for i in range(estimate.num_rows):
        j = exact_by_key.get(tuple(estimate.column(k)[i] for k in key_cols))
        if j is None:
            continue
        for agg, ci in zip(agg_cols, ci_cols):
            truth = float(exact.column(agg)[j])
            est = float(estimate.column(agg)[i])
            half = float(estimate.column(ci)[i])
            if np.isfinite(truth) and np.isfinite(est):
                checked += 1
                covered += bool(abs(est - truth) <= half)
    return covered, checked


def test_prune_bars():
    db = generate_tpcds(scale=SCALE, seed=SEED)
    planner = QuickrPlanner(db)
    pruned_exec = Executor(db, parallelism=DEGREE, parallel_options=options())
    full_exec = Executor(db, parallelism=DEGREE, parallel_options=options(prune=False))

    report = {
        "scale": SCALE,
        "seed": SEED,
        "degree": DEGREE,
        "skip_bar": SKIP_BAR,
        "selective_subset": list(SELECTIVE),
        "queries": {},
        "selection": {},
    }

    # -- zero drift over the whole suite, skip rate over the subset ---------
    credit = 0.0
    for query in queries(db):
        plan = planner.plan(query).plan
        with_prune = pruned_exec.execute(plan)
        without = full_exec.execute(plan)
        identical = tables_identical(with_prune.table, without.table)
        info = with_prune.parallel.pruning if with_prune.parallel else None
        report["queries"][query.name] = {
            "identical": identical,
            "pruning": info,
        }
        if info:
            credit += info["machine_hours_credit"]
        assert identical, f"{query.name} drifted under exact pruning"
    report["machine_hours_credit_total"] = credit

    fired = {
        name: row["pruning"]
        for name, row in report["queries"].items()
        if row["pruning"]
    }
    missing = [name for name in SELECTIVE if name not in fired]
    assert not missing, f"pruning never fired on {missing} (fired: {sorted(fired)})"
    skipped = sum(fired[name]["partitions_pruned"] for name in SELECTIVE)
    total = sum(fired[name]["partitions_total"] for name in SELECTIVE)
    report["selective_skip_fraction"] = skipped / total
    assert skipped / total >= SKIP_BAR, (
        f"selective subset skipped {skipped}/{total} partitions "
        f"({skipped / total:.0%}), bar is {SKIP_BAR:.0%}"
    )

    # -- weighted selection: fewer partitions, CIs still cover truth --------
    select_exec = Executor(
        db,
        parallelism=DEGREE,
        parallel_options=options(selection_fraction=SELECTION_FRACTION),
    )
    for name in SELECTION_QUERIES:
        query = query_by_name(db, name)
        plan = planner.plan(query).plan
        selected = select_exec.execute(plan)
        info = selected.parallel.pruning
        assert info is not None and info["partitions_selected"], (
            f"{name}: weighted selection did not engage"
        )
        survivors = info["partitions_total"] - info["partitions_pruned"]
        assert info["partitions_executed"] < survivors, (
            f"{name}: selection executed all {survivors} surviving partitions"
        )
        exact = Executor(db).execute(planner.plan_baseline(query).plan)
        covered, checked = ci_coverage(selected.table, exact.table)
        report["selection"][name] = {
            "fraction": SELECTION_FRACTION,
            "partitions_executed": info["partitions_executed"],
            "partitions_surviving": survivors,
            "inclusion_min": info["inclusion_min"],
            "rows_unselected": info["rows_unselected"],
            "ci_cells_checked": checked,
            "ci_cells_covered": covered,
        }
        assert checked > 0, f"{name}: no comparable CI cells"
        assert covered / checked >= 0.75, (
            f"{name}: CIs cover only {covered}/{checked} exact values"
        )

    from repro.experiments.report import bench_envelope

    with open(OUTPUT, "w", encoding="utf-8") as fh:
        json.dump(
            bench_envelope("prune", report, scale=SCALE, seed=SEED, degree=DEGREE),
            fh,
            indent=2,
            sort_keys=True,
        )
    print(
        f"\nprune bars: {report['selective_skip_fraction']:.0%} of selective-subset "
        f"partitions skipped (bar {SKIP_BAR:.0%}), zero drift on "
        f"{len(report['queries'])} queries, selection covered truth on "
        f"{', '.join(SELECTION_QUERIES)}; wrote {OUTPUT}"
    )
