"""Shared fixtures: small synthetic databases reused across test modules."""

import numpy as np
import pytest

from repro.engine.table import Database, Table


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session", autouse=True)
def no_shared_memory_leaks():
    """The whole run — including worker-crash chaos — must leave /dev/shm
    clean: every qkr* segment is reclaimed by release, sweep, or reap."""
    yield
    from repro.memory import leaked_system_segments, manager

    manager().release_all()
    leaked = leaked_system_segments()
    assert leaked == [], f"shared-memory segments leaked by the test run: {leaked}"


def make_sales_db(n_sales: int = 20_000, n_items: int = 40, n_customers: int = 500, seed: int = 7) -> Database:
    """A two-table star plus a returns table for join tests."""
    gen = np.random.default_rng(seed)
    db = Database()
    db.register(
        Table(
            "sales",
            {
                "s_item": gen.integers(0, n_items, n_sales),
                "s_cust": gen.integers(0, n_customers, n_sales),
                "s_day": gen.integers(0, 365, n_sales),
                "s_qty": gen.integers(1, 20, n_sales),
                "s_amount": np.round(gen.exponential(25.0, n_sales), 2),
            },
        )
    )
    db.register(
        Table(
            "item",
            {
                "i_item": np.arange(n_items),
                "i_cat": gen.integers(0, 5, n_items),
                "i_price": np.round(gen.lognormal(2.0, 0.5, n_items), 2),
            },
        )
    )
    n_returns = n_sales // 10
    picked = gen.choice(n_sales, size=n_returns, replace=False)
    sales = db.table("sales")
    db.register(
        Table(
            "returns",
            {
                "r_item": sales.column("s_item")[picked],
                "r_cust": sales.column("s_cust")[picked],
                "r_amount": np.round(sales.column("s_amount")[picked] * 0.9, 2),
            },
        )
    )
    return db


@pytest.fixture(scope="session")
def sales_db() -> Database:
    return make_sales_db()


@pytest.fixture(scope="session")
def tiny_tpcds():
    from repro.workloads.tpcds import generate_tpcds

    return generate_tpcds(scale=0.08, seed=3)


@pytest.fixture()
def small_table(rng) -> Table:
    n = 5_000
    return Table(
        "t",
        {
            "k": rng.integers(0, 50, n),
            "g": rng.integers(0, 8, n),
            "x": rng.normal(10.0, 3.0, n),
        },
    )
