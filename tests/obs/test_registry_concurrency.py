"""Registry thread-safety: no lost updates under concurrent mutation.

CPython's ``+=`` is not atomic (read/add/store bytecodes interleave), so
an unlocked counter hammered by N threads loses increments. These tests
hammer every instrument type and demand *exact* totals.
"""

import threading

from repro.obs.registry import MetricsRegistry

NUM_THREADS = 16
ITERATIONS = 1000


def hammer(worker):
    barrier = threading.Barrier(NUM_THREADS)

    def run(index):
        barrier.wait()  # maximize interleaving
        worker(index)

    threads = [threading.Thread(target=run, args=(i,)) for i in range(NUM_THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


class TestCounterConcurrency:
    def test_no_lost_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        hammer(lambda i: [counter.inc() for _ in range(ITERATIONS)])
        assert counter.snapshot() == NUM_THREADS * ITERATIONS

    def test_get_or_create_race_yields_one_instrument(self):
        registry = MetricsRegistry()
        hammer(lambda i: registry.counter("shared", tenant="t").inc())
        assert registry.value("shared", tenant="t") == NUM_THREADS

    def test_labeled_counters_stay_independent(self):
        registry = MetricsRegistry()
        hammer(
            lambda i: [
                registry.counter("reqs", tenant=f"t{i % 4}").inc()
                for _ in range(ITERATIONS)
            ]
        )
        for tenant_id in range(4):
            assert (
                registry.value("reqs", tenant=f"t{tenant_id}")
                == NUM_THREADS // 4 * ITERATIONS
            )


class TestGaugeConcurrency:
    def test_add_is_exact(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(0)

        def worker(index):
            for _ in range(ITERATIONS):
                gauge.add(1)
                gauge.add(-1)

        hammer(worker)
        assert gauge.snapshot() == 0


class TestHistogramConcurrency:
    def test_count_is_exact_and_snapshot_concurrent_safe(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency")
        snapshots = []

        def worker(index):
            for step in range(ITERATIONS):
                histogram.observe(float(step))
            # Read while other threads still write: must not raise.
            snapshots.append(histogram.snapshot())

        hammer(worker)
        assert histogram.count == NUM_THREADS * ITERATIONS
        final = histogram.snapshot()
        assert final["count"] == NUM_THREADS * ITERATIONS
        assert final["max"] == float(ITERATIONS - 1)
        assert all(s["count"] <= final["count"] for s in snapshots)
