"""Tests for the flight recorder and postmortem bundles."""

import json
import os

from repro.obs import trace as obs_trace
from repro.obs.flight import FlightRecorder, load_bundle, render_bundle


def spans_for(record):
    """A tiny two-span tree captured the way the service captures them."""
    tracer = obs_trace.Tracer(name=f"query-{record.query_id}")
    with tracer.span("execute", query=record.query):
        with tracer.span("scan", rows=100):
            pass
    return tracer.buffer()


def finished_record(recorder, outcome="cancelled.deadline", **notes):
    record = recorder.record("s-1", "ads", "q07", "quickr", deadline_ms=50.0)
    record.note("admission", "admitted", queue_depth=0)
    record.note("governor", "attempt", rung="quickr", fingerprint="ab12cd34ef56")
    record.note("governor", "downgrade", from_rung="quickr",
                to_rung="quickr-coarse", reason="deadline")
    record.plan_fingerprint = "ab12cd34ef56" * 4
    record.governance = {"checks": 17, "cancelled": True,
                         "cancel_reason": "deadline"}
    record.pruning = {"partitions_total": 8, "partitions_pruned": 5}
    record.spans = spans_for(record)
    return record, recorder.finish(record, outcome, **notes)


class TestRecording:
    def test_ring_is_bounded(self):
        recorder = FlightRecorder(capacity=3)
        for i in range(5):
            recorder.record("s", "t", f"q{i:02d}", "quickr")
        recent = recorder.recent()
        assert len(recent) == 3
        assert [r.query for r in recent] == ["q02", "q03", "q04"]

    def test_query_ids_are_monotonic(self):
        recorder = FlightRecorder(capacity=8)
        ids = [recorder.record("s", "t", "q01", "quickr").query_id
               for _ in range(4)]
        assert ids == sorted(ids) and len(set(ids)) == 4
        assert recorder.find(ids[2]).query_id == ids[2]

    def test_events_carry_elapsed_and_extras(self):
        recorder = FlightRecorder()
        record = recorder.record("s", "t", "q01", "quickr")
        record.note("admission", "admitted", queue_depth=2)
        [event] = record.events
        assert event["layer"] == "admission" and event["kind"] == "admitted"
        assert event["queue_depth"] == 2 and event["elapsed_ms"] >= 0


class TestDumping:
    def test_should_dump_semantics(self):
        should = FlightRecorder.should_dump
        assert should("cancelled.deadline") and should("failed")
        assert should("served.degraded") and should("rejected.queue-full") is False
        assert not should("served") and not should(None)

    def test_served_never_touches_disk(self, tmp_path):
        recorder = FlightRecorder(dump_dir=str(tmp_path))
        record = recorder.record("s", "t", "q01", "quickr")
        assert recorder.finish(record, "served") is None
        assert list(tmp_path.iterdir()) == []
        assert record.outcome == "served"
        # finish() appended the outcome to the decision trail regardless.
        assert record.events[-1]["kind"] == "outcome"

    def test_bad_ending_writes_full_bundle(self, tmp_path):
        recorder = FlightRecorder(dump_dir=str(tmp_path))
        record, bundle = finished_record(
            recorder, metrics_snapshot={"counter": {"x": []}}
        )
        assert bundle is not None and os.path.isdir(bundle)
        names = sorted(os.listdir(bundle))
        assert names == ["metrics.json", "record.json", "trace.json"]

        loaded = load_bundle(bundle)
        assert loaded["query"] == "q07" and loaded["outcome"] == "cancelled.deadline"
        assert loaded["governance"]["cancel_reason"] == "deadline"
        assert len(loaded["spans"]) == 2

        with open(os.path.join(bundle, "trace.json")) as fh:
            events = json.load(fh)
        assert obs_trace.validate_chrome_trace(events) == []

    def test_no_dump_dir_keeps_everything_in_memory(self):
        recorder = FlightRecorder(dump_dir=None)
        record = recorder.record("s", "t", "q01", "quickr")
        assert recorder.finish(record, "cancelled.deadline") is None
        assert recorder.dumped == 0

    def test_retention_deletes_oldest(self, tmp_path):
        recorder = FlightRecorder(dump_dir=str(tmp_path), max_bundles=2)
        for _ in range(4):
            finished_record(recorder)
        bundles = sorted(e for e in os.listdir(tmp_path)
                         if e.startswith("postmortem-"))
        assert len(bundles) == 2
        # The newest two survive: ids 3 and 4.
        assert bundles == ["postmortem-000003-cancelled.deadline",
                           "postmortem-000004-cancelled.deadline"]


class TestRendering:
    def test_render_covers_trail_ticket_footer_and_spans(self, tmp_path):
        recorder = FlightRecorder(dump_dir=str(tmp_path))
        _, bundle = finished_record(recorder)
        text = render_bundle(bundle)
        assert "postmortem: query q07 [quickr] tenant=ads" in text
        assert "outcome=cancelled.deadline" in text
        assert "decision trail:" in text
        assert "downgrade" in text and "to_rung=quickr-coarse" in text
        assert "governance ticket:" in text and "cancel_reason = deadline" in text
        assert "prune footer:" in text and "partitions_pruned = 5" in text
        assert "span tree (2 spans):" in text
        assert "execute" in text and "scan" in text

    def test_render_from_bare_record_json(self, tmp_path):
        recorder = FlightRecorder(dump_dir=str(tmp_path))
        _, bundle = finished_record(recorder)
        text = render_bundle(os.path.join(bundle, "record.json"))
        assert "postmortem: query q07" in text

    def test_render_without_spans(self, tmp_path):
        recorder = FlightRecorder(dump_dir=str(tmp_path))
        record = recorder.record("s", "t", "q01", "quickr")
        bundle = recorder.finish(record, "failed")
        assert "span tree: (no spans recorded)" in render_bundle(bundle)
