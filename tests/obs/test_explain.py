"""Tests for ``explain-analyze``: rendering and address agreement.

The explain tree, the operator-metrics list and the trace spans are three
views of one execution; they must all key on the same structural node
addresses, for every query in the workload.
"""

import pytest

from repro.algebra.addressing import format_address, plan_fingerprint
from repro.algebra.aggregates import sum_
from repro.algebra.builder import scan
from repro.algebra.expressions import col
from repro.engine.executor import Executor
from repro.obs.explain import explain_analyze, render_explain
from repro.obs.trace import Tracer, set_tracer
from repro.optimizer.planner import QuickrPlanner
from repro.workloads.tpcds import queries


@pytest.fixture(scope="module")
def stack(tiny_tpcds):
    return QuickrPlanner(tiny_tpcds), Executor(tiny_tpcds)


class TestRendering:
    def test_every_query_renders(self, tiny_tpcds, stack):
        planner, executor = stack
        for query in queries(tiny_tpcds):
            text = explain_analyze(planner, executor, query)
            assert f"explain analyze: {query.name}" in text
            assert "plan fingerprint" in text
            assert "address" in text and "actual in -> out" in text
            assert "answer:" in text
            assert ("approximable" in text) or ("unapproximable" in text)

    def test_tree_carries_measurements_and_fingerprint(self, tiny_tpcds, stack):
        planner, executor = stack
        query = next(q for q in queries(tiny_tpcds) if q.name == "q02")
        result = planner.plan(query)
        execution = executor.execute(result.plan)
        text = render_explain(planner, result, execution)
        assert plan_fingerprint(result.plan)[:12] in text
        # The root address and measured row counts appear in the table.
        assert "\nr " in text or "\nr  " in text
        for metric in execution.operators:
            assert format_address(metric.address) in text
            assert f"{metric.rows_in:,} -> {metric.rows_out:,}" in text

    def test_approximable_query_reports_sampler_telemetry(self, sales_db):
        # The dense sales schema (500 rows/group) reliably clears the
        # accuracy bar, so ASALQA places a sampler and the telemetry
        # section renders regardless of TPC-DS scale.
        planner, executor = QuickrPlanner(sales_db), Executor(sales_db)
        query = (
            scan(sales_db, "sales")
            .groupby("s_item")
            .agg(sum_(col("s_amount"), "total"))
            .build("sales_total")
        )
        result = planner.plan(query)
        if not result.approximable:
            pytest.skip("sales plan not approximable under current cost model")
        text = render_explain(planner, result, executor.execute(result.plan))
        assert "samplers (decision | runtime telemetry):" in text
        assert "target p=" in text and "effective rate=" in text
        assert "C1=" in text and "C2=" in text


class TestAddressAgreement:
    def test_trace_spans_match_compiled_plan_addresses(self, tiny_tpcds, stack):
        planner, executor = stack
        for query in queries(tiny_tpcds):
            plan = planner.plan(query).plan
            physical, _ = executor.compile(plan)
            expected = {
                format_address(address) for address in physical.address_to_index
            }
            tracer = Tracer()
            set_tracer(tracer)
            try:
                executor.execute(plan)
            finally:
                set_tracer(None)
            op_spans = [s for s in tracer.spans if s.name.startswith("op.")]
            traced = {s.attributes["address"] for s in op_spans}
            assert traced == expected, query.name
            # One span per physical operator, all closed ok.
            assert len(op_spans) == physical.num_operators
            assert all(s.status == "ok" and s.closed for s in op_spans)

    def test_operator_metrics_share_span_addresses(self, tiny_tpcds, stack):
        planner, executor = stack
        plan = planner.plan(next(iter(queries(tiny_tpcds)))).plan
        tracer = Tracer()
        set_tracer(tracer)
        try:
            execution = executor.execute(plan)
        finally:
            set_tracer(None)
        span_addresses = {
            s.attributes["address"] for s in tracer.spans if s.name.startswith("op.")
        }
        assert {
            format_address(m.address) for m in execution.operators
        } == span_addresses
