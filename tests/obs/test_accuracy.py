"""Tests for the accuracy/SLO ledger and the audit comparison."""

import numpy as np
import pytest

from repro.engine.table import Table
from repro.obs.accuracy import AccuracyLedger, compare_tables
from repro.obs.registry import MetricsRegistry


def approx_table(values, ci, keys=None):
    cols = {"g": np.asarray(keys if keys is not None else range(len(values)))}
    cols["total"] = np.asarray(values, dtype=np.float64)
    cols["total__ci"] = np.asarray(ci, dtype=np.float64)
    return Table("approx", cols)


def exact_table(values, keys=None):
    cols = {"g": np.asarray(keys if keys is not None else range(len(values)))}
    cols["total"] = np.asarray(values, dtype=np.float64)
    return Table("exact", cols)


class TestCompareTables:
    def test_perfect_coverage(self):
        cmp = compare_tables(
            approx_table([10.0, 20.0], ci=[1.0, 1.0]),
            exact_table([10.5, 19.5]),
        )
        assert cmp.cells_checked == 2 and cmp.cells_covered == 2
        assert cmp.groups_matched == 2 and cmp.groups_missed == 0
        assert cmp.max_rel_error == pytest.approx(0.5 / 10.5)

    def test_ci_miss_counted(self):
        cmp = compare_tables(
            approx_table([10.0], ci=[0.1]), exact_table([12.0])
        )
        assert cmp.cells_checked == 1 and cmp.cells_covered == 0
        assert cmp.mean_rel_error == pytest.approx(2.0 / 12.0)

    def test_missed_groups(self):
        # Exact has three groups; the sample only kept two.
        cmp = compare_tables(
            approx_table([10.0, 20.0], ci=[5.0, 5.0], keys=[0, 1]),
            exact_table([10.0, 20.0, 30.0], keys=[0, 1, 2]),
        )
        assert cmp.groups_missed == 1 and cmp.groups_matched == 2

    def test_non_finite_cells_skipped(self):
        cmp = compare_tables(
            approx_table([np.nan], ci=[1.0]), exact_table([10.0])
        )
        assert cmp.cells_checked == 0


class TestLedgerCalibration:
    def test_audits_aggregate_per_slice(self):
        ledger = AccuracyLedger(MetricsRegistry())
        for _ in range(2):
            cmp = compare_tables(
                approx_table([10.0, 20.0], ci=[1.0, 1.0]),
                exact_table([10.5, 19.5]),
            )
            cmp.tenant, cmp.sampler_kind, cmp.rung = "ads", "uniform", "quickr"
            ledger.record_audit(cmp)
        report = ledger.report()
        [row] = report["calibration"]
        assert (row["tenant"], row["sampler_kind"], row["rung"]) == (
            "ads", "uniform", "quickr",
        )
        assert row["audits"] == 2
        assert row["cells_checked"] == 4 and row["observed_coverage"] == 1.0
        assert row["nominal_coverage"] == 0.95

    def test_registry_mirrors_calibration(self):
        registry = MetricsRegistry()
        ledger = AccuracyLedger(registry)
        cmp = compare_tables(
            approx_table([10.0], ci=[0.01]), exact_table([12.0])
        )
        cmp.tenant, cmp.sampler_kind, cmp.rung = "t", "uniform", "quickr"
        ledger.record_audit(cmp)
        labels = dict(tenant="t", kind="uniform", rung="quickr")
        assert registry.value("accuracy.audits", **labels) == 1
        assert registry.value("accuracy.observed_coverage", **labels) == 0.0

    def test_abandoned_counted(self):
        registry = MetricsRegistry()
        ledger = AccuracyLedger(registry)
        ledger.record_abandoned("preempted")
        ledger.record_abandoned("queue-full")
        assert ledger.report()["audits_abandoned"] == 2
        assert registry.total("accuracy.audits_abandoned") == 2


class TestLedgerSLO:
    def test_burn_rate_math(self):
        # 1% budget; 2 violations out of 100 requests = burn 2.0.
        ledger = AccuracyLedger(latency_slo_ms=100.0, slo_target=0.99)
        for _ in range(98):
            ledger.record_request("ads", latency_seconds=0.01)
        ledger.record_request("ads", latency_seconds=0.5)   # over SLO
        ledger.record_request("ads", None, cancelled=True)  # cancelled
        entry = ledger.report()["slo"]["ads"]
        assert entry["requests"] == 100
        assert entry["violations"] == 2 and entry["cancelled"] == 1
        assert entry["error_budget_burn"] == pytest.approx(2.0)

    def test_no_latency_bound_counts_only_cancellations(self):
        ledger = AccuracyLedger(latency_slo_ms=None, slo_target=0.99)
        ledger.record_request("t", latency_seconds=999.0)
        ledger.record_request("t", None, cancelled=True)
        entry = ledger.report()["slo"]["t"]
        assert entry["violations"] == 1

    def test_burn_gauge_exported(self):
        registry = MetricsRegistry()
        ledger = AccuracyLedger(registry, latency_slo_ms=10.0, slo_target=0.9)
        ledger.record_request("t", latency_seconds=1.0)  # violation
        assert registry.value("slo.error_budget_burn", tenant="t") == pytest.approx(
            10.0
        )

    def test_invalid_targets_rejected(self):
        with pytest.raises(ValueError):
            AccuracyLedger(nominal_coverage=1.5)
        with pytest.raises(ValueError):
            AccuracyLedger(slo_target=0.0)
