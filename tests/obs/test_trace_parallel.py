"""Cross-worker trace stitching: attempt spans, speculation, fault injection.

The three invariants the observability layer promises the parallel runtime:

* worker-side spans (``task.work`` and everything under it) survive the
  trip back to the parent on **every** pool backend — including pickling
  across the process pool — and land under the right ``task.attempt``;
* under speculation, exactly the losing attempts close as ``cancelled``
  (at the cancellation decision, so the trace never holds open spans);
* under fault injection, the attempt spans are a complete, attempt-numbered
  ledger: their count equals tasks + retries + speculative launches as
  reported by the runtime's own metrics.
"""

import time

import pytest

from repro.algebra.aggregates import sum_
from repro.algebra.builder import from_node, scan
from repro.algebra.expressions import col
from repro.algebra.logical import SamplerNode
from repro.engine.executor import Executor
from repro.obs.trace import Tracer, set_tracer, validate_chrome_trace
from repro.parallel import Fault, FaultPlan, ParallelOptions
from repro.parallel.pool import WorkerPool
from repro.parallel.tasks import RetryPolicy, TaskRuntime
from repro.samplers.uniform import UniformSpec

POOLS = ("inline", "thread", "process")
DEGREE = 4

#: Fast backoff, eager speculation — keeps retry-heavy tests quick.
FAST = RetryPolicy(
    backoff_base=0.005, backoff_max=0.05, speculation_min_seconds=0.1, poll_interval=0.005
)


@pytest.fixture(autouse=True)
def tracer():
    tracer = Tracer()
    set_tracer(tracer)
    yield tracer
    set_tracer(None)


def runtime(mode, workers=None, policy=FAST):
    return TaskRuntime(WorkerPool(mode, workers), policy=policy, base_seed=0)


def attempts_by_partition(tracer):
    grouped = {}
    for span in tracer.find("task.attempt"):
        grouped.setdefault(span.attributes["partition"], []).append(span)
    return grouped


class TestWorkerSpansSurviveEveryBackend:
    @pytest.mark.parametrize("mode", POOLS)
    def test_work_spans_adopted_under_attempts(self, tracer, mode):
        workers = None if mode == "inline" else DEGREE
        report = runtime(mode, workers).run(lambda spec: spec.partition * 10, DEGREE)
        assert report.all_succeeded

        attempts = tracer.find("task.attempt")
        works = tracer.find("task.work")
        assert len(attempts) == DEGREE
        assert len(works) == DEGREE
        # Every worker-recorded span was spliced under its attempt span —
        # for the process pool that means it survived pickling.
        attempt_ids = {span.span_id for span in attempts}
        for work in works:
            assert work.parent_id in attempt_ids
            assert work.closed
        # Attempt and work agree on which execution this was.
        by_id = {span.span_id: span for span in attempts}
        for work in works:
            parent = by_id[work.parent_id]
            assert work.attributes["partition"] == parent.attributes["partition"]
            assert work.attributes["attempt"] == parent.attributes["attempt"]
        assert all(span.status == "ok" for span in attempts)
        assert tracer.unclosed() == []

    @pytest.mark.parametrize("mode", POOLS)
    def test_retried_attempt_spans_carry_error_then_ok(self, tracer, mode):
        def flaky(spec):
            if spec.partition == 1 and spec.attempt == 0:
                raise RuntimeError("transient")
            return spec.partition

        workers = None if mode == "inline" else DEGREE
        report = runtime(mode, workers).run(flaky, 2)
        assert report.all_succeeded
        spans = sorted(
            attempts_by_partition(tracer)[1], key=lambda s: s.attributes["attempt"]
        )
        assert [s.status for s in spans] == ["error", "ok"]
        assert "RuntimeError" in spans[0].attributes["error"]
        assert tracer.unclosed() == []


class TestSpeculation:
    def test_loser_span_closed_as_cancelled(self, tracer):
        def slow_first_attempt(spec):
            if spec.partition == 1 and spec.attempt == 0:
                time.sleep(1.0)
            return (spec.partition, spec.attempt)

        report = runtime("thread", workers=5).run(slow_first_attempt, DEGREE)
        assert report.all_succeeded
        assert report.outcomes[1].won_by_speculation

        spans = attempts_by_partition(tracer)[1]
        by_status = {s.status: s for s in spans}
        assert set(by_status) == {"ok", "cancelled"}
        winner, loser = by_status["ok"], by_status["cancelled"]
        assert winner.attributes["speculative"] is True
        assert winner.attributes["won"] is True
        assert winner.attributes["won_by_speculation"] is True
        assert loser.attributes["attempt"] == 0
        # The loser is closed at the cancellation decision — the straggler
        # is still sleeping, yet nothing in the trace stays open.
        assert loser.closed
        assert tracer.unclosed() == []
        assert validate_chrome_trace(tracer.to_chrome()) == []


class TestFaultInjectedLedger:
    @pytest.fixture()
    def uniform_query(self, sales_db):
        return (
            from_node(SamplerNode(scan(sales_db, "sales").node, UniformSpec(0.1, seed=42)))
            .groupby("s_item")
            .agg(sum_(col("s_amount"), "total"))
            .orderby("s_item")
            .build("traced_ft")
        )

    @pytest.mark.parametrize("pool", ("inline", "thread"))
    def test_attempt_spans_match_stats(self, tracer, sales_db, uniform_query, pool):
        fault_plan = FaultPlan(
            [Fault(0, 0, "crash"), Fault(2, 0, "crash"), Fault(2, 1, "crash")]
        )
        executor = Executor(
            sales_db,
            parallelism=DEGREE,
            parallel_options=ParallelOptions(
                pool=pool,
                min_partition_rows=1_000,
                max_workers=DEGREE + 1,
                retry=FAST,
                fault_plan=fault_plan,
            ),
        )
        result = executor.execute(uniform_query)
        metrics = result.parallel
        assert metrics.faults_injected == 3
        assert metrics.task_retries >= 3

        # The spans are a complete attempt ledger: one per launch.
        attempts = tracer.find("task.attempt")
        expected = metrics.tasks + metrics.task_retries + metrics.speculative_launches
        assert len(attempts) == expected

        # Attempt numbering per partition is dense from zero — the span
        # attributes reproduce FaultToleranceStats-level accounting exactly.
        for partition, spans in attempts_by_partition(tracer).items():
            numbers = sorted(s.attributes["attempt"] for s in spans)
            assert numbers == list(range(len(spans))), f"partition {partition}"

        # Crashed attempts closed as errors; every partition ends with a win.
        errors = [s for s in attempts if s.status == "error"]
        assert len(errors) == metrics.task_retries
        winners = [s for s in attempts if s.attributes.get("won")]
        assert len(winners) == metrics.tasks

        # The whole run hangs off one parallel.query root and exports clean.
        roots = tracer.find("parallel.query")
        assert len(roots) == 1
        assert roots[0].attributes["retries"] == metrics.task_retries
        assert tracer.unclosed() == []
        assert validate_chrome_trace(tracer.to_chrome()) == []
