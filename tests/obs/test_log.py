"""Tests for the ``repro`` logger hierarchy."""

import io
import logging

import pytest

from repro.obs.log import LEVELS, _CONFIGURED_FLAG, _ROOT, configure, logger


@pytest.fixture(autouse=True)
def _restore_root():
    handlers, level = list(_ROOT.handlers), _ROOT.level
    yield
    _ROOT.handlers[:] = handlers
    _ROOT.setLevel(level)


class TestLogger:
    def test_names_live_under_repro(self):
        assert logger().name == "repro"
        assert logger("parallel.tasks").name == "repro.parallel.tasks"

    def test_silent_by_default(self, capsys):
        # The unconfigured hierarchy has only a NullHandler: emitting must
        # not print and must not trip the "no handlers" last-resort output.
        for handler in list(_ROOT.handlers):
            if getattr(handler, _CONFIGURED_FLAG, False):
                _ROOT.removeHandler(handler)
        logger("test").warning("should vanish")
        captured = capsys.readouterr()
        assert captured.out == "" and captured.err == ""


class TestConfigure:
    def test_writes_to_stream_at_level(self):
        stream = io.StringIO()
        configure("warning", stream=stream)
        log = logger("unit")
        log.info("hidden")
        log.warning("visible")
        text = stream.getvalue()
        assert "hidden" not in text
        assert "WARNING repro.unit: visible" in text

    def test_reconfigure_replaces_handler(self):
        configure("info", stream=io.StringIO())
        stream = io.StringIO()
        configure("debug", stream=stream)
        configured = [h for h in _ROOT.handlers if getattr(h, _CONFIGURED_FLAG, False)]
        assert len(configured) == 1
        logger("unit").debug("once")
        assert stream.getvalue().count("once") == 1
        assert _ROOT.level == logging.DEBUG

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            configure("loud")

    def test_levels_are_valid_logging_names(self):
        for level in LEVELS:
            assert isinstance(getattr(logging, level.upper()), int)


class TestWorkerPropagation:
    """configured_level()/apply_level(): the fork-payload level handoff."""

    @pytest.fixture(autouse=True)
    def _restore_level(self):
        import repro.obs.log as obs_log

        saved = obs_log._CONFIGURED_LEVEL
        yield
        obs_log._CONFIGURED_LEVEL = saved

    def test_unconfigured_reports_none(self):
        import repro.obs.log as obs_log

        obs_log._CONFIGURED_LEVEL = None
        assert obs_log.configured_level() is None

    def test_configure_records_level(self):
        from repro.obs.log import configured_level

        configure("debug", stream=io.StringIO())
        assert configured_level() == "debug"

    def test_apply_none_is_noop(self):
        from repro.obs.log import apply_level

        before = list(_ROOT.handlers)
        apply_level(None)
        assert _ROOT.handlers == before

    def test_apply_matching_level_does_not_stack_handlers(self):
        from repro.obs.log import apply_level

        configure("info", stream=io.StringIO())
        before = [h for h in _ROOT.handlers
                  if getattr(h, _CONFIGURED_FLAG, False)]
        apply_level("info")
        after = [h for h in _ROOT.handlers
                 if getattr(h, _CONFIGURED_FLAG, False)]
        assert after == before and len(after) == 1

    def test_apply_divergent_level_reconfigures(self):
        import repro.obs.log as obs_log

        configure("warning", stream=io.StringIO())
        obs_log.apply_level("debug")
        assert _ROOT.level == logging.DEBUG
        assert obs_log.configured_level() == "debug"

    def test_apply_reconfigures_bare_worker(self):
        # A spawn-style worker: no configured handler at all, but the
        # parent's level arrives through the payload.
        import repro.obs.log as obs_log

        for handler in list(_ROOT.handlers):
            if getattr(handler, _CONFIGURED_FLAG, False):
                _ROOT.removeHandler(handler)
        obs_log._CONFIGURED_LEVEL = None
        obs_log.apply_level("info")
        assert obs_log.configured_level() == "info"
        assert any(getattr(h, _CONFIGURED_FLAG, False) for h in _ROOT.handlers)

    def test_fork_payload_carries_level(self):
        from repro.obs.log import configured_level
        from repro.parallel import pool as parallel_pool

        configure("warning", stream=io.StringIO())
        with parallel_pool.fork_payload(lambda x: x, [1, 2]):
            assert parallel_pool._PAYLOAD[2] == configured_level() == "warning"
        assert parallel_pool._PAYLOAD is None
