"""Tests for the ``repro`` logger hierarchy."""

import io
import logging

import pytest

from repro.obs.log import LEVELS, _CONFIGURED_FLAG, _ROOT, configure, logger


@pytest.fixture(autouse=True)
def _restore_root():
    handlers, level = list(_ROOT.handlers), _ROOT.level
    yield
    _ROOT.handlers[:] = handlers
    _ROOT.setLevel(level)


class TestLogger:
    def test_names_live_under_repro(self):
        assert logger().name == "repro"
        assert logger("parallel.tasks").name == "repro.parallel.tasks"

    def test_silent_by_default(self, capsys):
        # The unconfigured hierarchy has only a NullHandler: emitting must
        # not print and must not trip the "no handlers" last-resort output.
        for handler in list(_ROOT.handlers):
            if getattr(handler, _CONFIGURED_FLAG, False):
                _ROOT.removeHandler(handler)
        logger("test").warning("should vanish")
        captured = capsys.readouterr()
        assert captured.out == "" and captured.err == ""


class TestConfigure:
    def test_writes_to_stream_at_level(self):
        stream = io.StringIO()
        configure("warning", stream=stream)
        log = logger("unit")
        log.info("hidden")
        log.warning("visible")
        text = stream.getvalue()
        assert "hidden" not in text
        assert "WARNING repro.unit: visible" in text

    def test_reconfigure_replaces_handler(self):
        configure("info", stream=io.StringIO())
        stream = io.StringIO()
        configure("debug", stream=stream)
        configured = [h for h in _ROOT.handlers if getattr(h, _CONFIGURED_FLAG, False)]
        assert len(configured) == 1
        logger("unit").debug("once")
        assert stream.getvalue().count("once") == 1
        assert _ROOT.level == logging.DEBUG

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            configure("loud")

    def test_levels_are_valid_logging_names(self):
        for level in LEVELS:
            assert isinstance(getattr(logging, level.upper()), int)
