"""Tests for the span tracer: nesting, statuses, stitching, Chrome export."""

import json
import threading

import pytest

from repro.errors import TaskCancelled
from repro.obs.trace import (
    Tracer,
    current_tracer,
    get_tracer,
    iter_trace_file,
    maybe_span,
    pop_override,
    push_override,
    set_tracer,
    validate_chrome_trace,
)


@pytest.fixture(autouse=True)
def _no_session_tracer():
    set_tracer(None)
    yield
    set_tracer(None)


class TestSpanLifecycle:
    def test_context_manager_nesting(self):
        tracer = Tracer()
        with tracer.span("outer", phase="plan"):
            with tracer.span("inner"):
                pass
        outer, inner = tracer.find("outer")[0], tracer.find("inner")[0]
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert outer.closed and inner.closed
        assert outer.attributes == {"phase": "plan"}
        assert outer.duration_ns >= inner.duration_ns >= 0

    def test_exception_marks_error_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("work"):
                raise ValueError("boom")
        span = tracer.find("work")[0]
        assert span.status == "error"
        assert "ValueError: boom" in span.attributes["error"]

    def test_task_cancelled_marks_cancelled(self):
        tracer = Tracer()
        with pytest.raises(TaskCancelled):
            with tracer.span("attempt"):
                raise TaskCancelled("superseded")
        assert tracer.find("attempt")[0].status == "cancelled"

    def test_manual_spans_nest_under_context_span(self):
        tracer = Tracer()
        with tracer.span("query") as outer:
            manual = tracer.begin("task.attempt", partition=3)
            tracer.end(manual, status="ok", seconds=0.5)
        assert manual.parent_id == outer.span_id
        assert manual.status == "ok"
        assert manual.attributes == {"partition": 3, "seconds": 0.5}

    def test_unclosed_reports_open_spans(self):
        tracer = Tracer()
        open_span = tracer.begin("never.closed")
        done = tracer.begin("done")
        tracer.end(done)
        assert tracer.unclosed() == [open_span]

    def test_children_sorted_by_start(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            tracer.end(tracer.begin("a"))
            tracer.end(tracer.begin("b"))
        names = [s.name for s in tracer.children_of(root.span_id)]
        assert names == ["a", "b"]


class TestAdopt:
    def test_buffer_round_trips_through_json(self):
        worker = Tracer()
        with worker.span("task.work", partition=1):
            with worker.span("op.scan"):
                pass
        buffer = json.loads(json.dumps(worker.buffer()))

        parent = Tracer()
        attempt = parent.begin("task.attempt")
        adopted = parent.adopt(buffer, parent_id=attempt.span_id)
        assert len(adopted) == 2
        work = parent.find("task.work")[0]
        scan = parent.find("op.scan")[0]
        # Buffer root re-parented onto the attempt; internal edge remapped.
        assert work.parent_id == attempt.span_id
        assert scan.parent_id == work.span_id
        assert work.attributes == {"partition": 1}

    def test_adopt_ids_do_not_collide(self):
        parent = Tracer()
        first = parent.begin("a")
        worker = Tracer()
        worker.end(worker.begin("w"))  # worker span_id 1 == parent's first
        adopted = parent.adopt(worker.buffer(), parent_id=first.span_id)
        ids = [s.span_id for s in parent.spans]
        assert len(ids) == len(set(ids))
        assert adopted[0].span_id != first.span_id

    def test_adopt_empty_buffer(self):
        parent = Tracer()
        assert parent.adopt([], parent_id=None) == []


class TestChromeExport:
    def test_export_is_schema_valid(self, tmp_path):
        tracer = Tracer()
        with tracer.span("query", fingerprint="ab12"):
            with tracer.span("op.scan", address="r"):
                pass
        events = tracer.to_chrome()
        assert validate_chrome_trace(events) == []
        # One metadata event + one X event per span.
        assert [e["ph"] for e in events].count("X") == 2
        assert events[0]["ph"] == "M"
        # Timestamps normalized to the earliest span.
        assert min(e["ts"] for e in events if e["ph"] == "X") == 0.0

        path = tmp_path / "trace.json"
        count = tracer.write_chrome(str(path))
        loaded = list(iter_trace_file(str(path)))
        assert len(loaded) == count
        assert validate_chrome_trace(loaded) == []

    def test_unclosed_span_fails_validation(self):
        tracer = Tracer()
        tracer.begin("left.open")
        problems = validate_chrome_trace(tracer.to_chrome())
        assert any("unclosed span" in p for p in problems)

    def test_dangling_parent_fails_validation(self):
        events = [
            {"name": "x", "ph": "X", "ts": 0, "dur": 1, "pid": 1, "tid": 1,
             "args": {"span_id": 1, "parent_id": 99}},
        ]
        problems = validate_chrome_trace(events)
        assert any("parent span 99" in p for p in problems)

    def test_missing_required_keys_flagged(self):
        problems = validate_chrome_trace([{"name": "x", "ph": "X", "dur": 1}])
        assert any("missing 'ts'" in p for p in problems)
        assert any("missing 'pid'" in p for p in problems)

    def test_non_ok_status_exported(self):
        tracer = Tracer()
        tracer.end(tracer.begin("t"), status="cancelled")
        (event,) = [e for e in tracer.to_chrome() if e["ph"] == "X"]
        assert event["args"]["status"] == "cancelled"
        assert event["cat"] == "cancelled"


class TestRenderTree:
    def test_tree_shows_nesting_and_status(self):
        tracer = Tracer()
        with tracer.span("planner.plan", query="q12"):
            failed = tracer.begin("task.attempt")
            tracer.end(failed, status="error")
        text = tracer.render_tree()
        lines = text.splitlines()
        assert lines[0].startswith("planner.plan")
        assert "query=q12" in lines[0]
        assert lines[1].startswith("  task.attempt [error]")


class TestActiveTracer:
    def test_maybe_span_is_noop_without_tracer(self):
        with maybe_span("anything", k=1) as span:
            assert span is None

    def test_maybe_span_records_when_installed(self):
        tracer = Tracer()
        set_tracer(tracer)
        with maybe_span("phase", k=1) as span:
            assert span is not None
        assert tracer.find("phase")[0].attributes == {"k": 1}

    def test_override_wins_and_restores(self):
        session, worker = Tracer(), Tracer()
        set_tracer(session)
        assert current_tracer() is session
        previous = push_override(worker)
        assert current_tracer() is worker
        assert get_tracer() is session  # get_tracer ignores overrides
        pop_override(previous)
        assert current_tracer() is session

    def test_override_is_thread_local(self):
        session, worker = Tracer(), Tracer()
        set_tracer(session)
        push_override(worker)
        seen = []
        thread = threading.Thread(target=lambda: seen.append(current_tracer()))
        thread.start()
        thread.join()
        pop_override(None)
        assert seen == [session]
