"""Harvest-boundary correctness: increments racing reset() are conserved.

The registry's contract (DESIGN §15): ``reset()`` *drains* each
instrument — read-and-zero as one critical section — so an increment
racing a harvest lands in exactly one snapshot: either the one the racing
``reset()`` returns, or a later one. These tests hammer that boundary
from many threads and assert exact conservation; the pre-fix
snapshot-then-zero implementation loses increments here reliably.
"""

import threading

import pytest

from repro.obs.registry import Counter, Histogram, MetricsRegistry

WRITERS = 4
INCREMENTS = 25_000


def _conserved_total(snapshots, final, name):
    total = 0.0
    for snap in snapshots + [final]:
        for entry in snap.get("counter", {}).get(name, []):
            total += entry["value"]
    return total


class TestCounterConservation:
    def test_increments_racing_reset_land_exactly_once(self):
        registry = MetricsRegistry()
        registry.counter("hammer")  # pre-create: the race is on mutation
        start = threading.Barrier(WRITERS + 1)
        done = threading.Event()

        def writer():
            counter = registry.counter("hammer")
            start.wait()
            for _ in range(INCREMENTS):
                counter.inc()

        threads = [threading.Thread(target=writer) for _ in range(WRITERS)]
        for t in threads:
            t.start()

        harvests = []

        def harvester():
            start.wait()
            while not done.is_set():
                harvests.append(registry.reset())

        h = threading.Thread(target=harvester)
        h.start()
        for t in threads:
            t.join()
        done.set()
        h.join()

        assert len(harvests) > 1, "harvester never raced the writers"
        total = _conserved_total(harvests, registry.snapshot(), "hammer")
        assert total == WRITERS * INCREMENTS

    def test_drain_is_atomic_under_direct_hammer(self):
        counter = Counter()
        start = threading.Barrier(WRITERS + 1)
        done = threading.Event()
        drained = []

        def writer():
            start.wait()
            for _ in range(INCREMENTS):
                counter.inc()

        def drainer():
            start.wait()
            while not done.is_set():
                drained.append(counter.drain())

        threads = [threading.Thread(target=writer) for _ in range(WRITERS)]
        d = threading.Thread(target=drainer)
        for t in threads:
            t.start()
        d.start()
        for t in threads:
            t.join()
        done.set()
        d.join()
        assert sum(drained) + counter.snapshot() == WRITERS * INCREMENTS


class TestHistogramConservation:
    def test_observation_count_conserved_across_resets(self):
        registry = MetricsRegistry()
        registry.histogram("lat", buckets=(0.01, 0.1, 1.0))
        start = threading.Barrier(WRITERS + 1)
        done = threading.Event()
        observations = 5_000

        def writer(value):
            hist = registry.histogram("lat", buckets=(0.01, 0.1, 1.0))
            start.wait()
            for _ in range(observations):
                hist.observe(value)

        threads = [
            threading.Thread(target=writer, args=(0.005 * (i + 1),))
            for i in range(WRITERS)
        ]
        for t in threads:
            t.start()

        harvests = []

        def harvester():
            start.wait()
            while not done.is_set():
                harvests.append(registry.reset())

        h = threading.Thread(target=harvester)
        h.start()
        for t in threads:
            t.join()
        done.set()
        h.join()

        count = 0
        for snap in harvests + [registry.snapshot()]:
            for entry in snap.get("histogram", {}).get("lat", []):
                count += entry["count"]
        assert count == WRITERS * observations

    def test_histogram_drain_resets_buckets(self):
        hist = Histogram(buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(5.0)
        snap = hist.drain()
        assert snap["count"] == 2
        assert hist.snapshot()["count"] == 0
        assert hist.bucket_counts()[1] == [0, 0, 0]


class TestExecutorHarvest:
    """The boundary as the service actually drives it: a shared executor
    registry reset between bursts of concurrent query traffic."""

    def test_reset_between_concurrent_bursts_conserves_queries(self, tiny_tpcds):
        from repro.engine.executor import Executor
        from repro.optimizer.planner import QuickrPlanner
        from repro.workloads.tpcds import query_by_name

        # One shared executor driven from several threads — the query
        # service's configuration of the registry.
        executor = Executor(tiny_tpcds)
        plan = QuickrPlanner(tiny_tpcds).plan(
            query_by_name(tiny_tpcds, "q01")
        ).plan
        executor.execute(plan)  # warm the compile cache
        executor.reset_metrics()  # measured phase starts from zero

        runs_per_thread = 4
        start = threading.Barrier(3)

        def burst():
            start.wait()
            for _ in range(runs_per_thread):
                executor.execute(plan)

        threads = [threading.Thread(target=burst) for _ in range(2)]
        for t in threads:
            t.start()

        harvests = []

        def harvester():
            start.wait()
            for _ in range(50):
                harvests.append(executor.reset_metrics()["metrics"])

        h = threading.Thread(target=harvester)
        h.start()
        for t in threads:
            t.join()
        h.join()

        final = executor.reset_metrics()["metrics"]
        total = _conserved_total(harvests, final, "executor.queries")
        assert total == 2 * runs_per_thread
