"""Tests for the OpenMetrics exporter, scrape endpoint and JSONL writer."""

import json
import urllib.request

from repro.obs.export import (
    CONTENT_TYPE,
    MetricsHTTPServer,
    TelemetrySnapshotWriter,
    render_openmetrics,
    validate_openmetrics,
)
from repro.obs.registry import MetricsRegistry


def populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("service.admitted", tenant="ads").inc(7)
    registry.counter("service.admitted", tenant="search").inc(2)
    registry.gauge("service.queue_depth").set(3)
    hist = registry.histogram("query.latency_seconds", buckets=(0.01, 0.1, 1.0))
    for value in (0.005, 0.05, 0.05, 0.5, 5.0):
        hist.observe(value)
    return registry


class TestRenderer:
    def test_counter_gains_total_suffix_and_labels(self):
        text = render_openmetrics(populated_registry())
        assert "# TYPE repro_service_admitted counter" in text
        assert 'repro_service_admitted_total{tenant="ads"} 7' in text
        assert 'repro_service_admitted_total{tenant="search"} 2' in text

    def test_gauge_renders_bare(self):
        text = render_openmetrics(populated_registry())
        assert "# TYPE repro_service_queue_depth gauge" in text
        assert "repro_service_queue_depth 3" in text

    def test_unset_gauge_has_no_sample(self):
        registry = MetricsRegistry()
        registry.gauge("never.set")
        text = render_openmetrics(registry)
        assert "never_set" not in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        text = render_openmetrics(populated_registry())
        assert "# TYPE repro_query_latency_seconds histogram" in text
        assert 'repro_query_latency_seconds_bucket{le="0.01"} 1' in text
        assert 'repro_query_latency_seconds_bucket{le="0.1"} 3' in text
        assert 'repro_query_latency_seconds_bucket{le="1"} 4' in text
        assert 'repro_query_latency_seconds_bucket{le="+Inf"} 5' in text
        assert "repro_query_latency_seconds_count 5" in text

    def test_terminates_with_eof(self):
        assert render_openmetrics(populated_registry()).endswith("# EOF\n")

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("m", q='say "hi"\nback\\slash').inc()
        text = render_openmetrics(registry)
        assert '\\"hi\\"' in text and "\\n" in text and "\\\\" in text
        assert validate_openmetrics(text) == []

    def test_exposition_passes_own_validator(self):
        assert validate_openmetrics(render_openmetrics(populated_registry())) == []

    def test_empty_registry_is_valid(self):
        text = render_openmetrics(MetricsRegistry())
        assert validate_openmetrics(text) == []


class TestValidator:
    def test_missing_eof_flagged(self):
        problems = validate_openmetrics("# TYPE x counter\nx_total 1\n")
        assert any("EOF" in p for p in problems)

    def test_counter_without_total_suffix_flagged(self):
        text = "# TYPE x counter\nx 1\n# EOF\n"
        assert any("_total" in p for p in validate_openmetrics(text))

    def test_sample_without_type_flagged(self):
        text = "mystery_metric 1\n# EOF\n"
        assert any("no preceding TYPE" in p for p in validate_openmetrics(text))

    def test_non_cumulative_buckets_flagged(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\n'
            'h_bucket{le="1"} 3\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_count 3\n"
            "# EOF\n"
        )
        assert any("not cumulative" in p for p in validate_openmetrics(text))

    def test_missing_inf_bucket_flagged(self):
        text = "# TYPE h histogram\n" 'h_bucket{le="0.1"} 5\n' "# EOF\n"
        assert any("+Inf" in p for p in validate_openmetrics(text))


class TestScrapeEndpoint:
    def test_metrics_and_healthz_over_http(self):
        registry = populated_registry()
        server = MetricsHTTPServer(
            registry, port=0, extra=lambda: {"queue_depth": 4}
        ).start()
        host, port = server.address
        try:
            with urllib.request.urlopen(f"http://{host}:{port}/metrics") as resp:
                assert resp.status == 200
                assert resp.headers["Content-Type"] == CONTENT_TYPE
                body = resp.read().decode("utf-8")
            assert validate_openmetrics(body) == []
            assert "repro_service_admitted_total" in body

            with urllib.request.urlopen(f"http://{host}:{port}/healthz") as resp:
                health = json.load(resp)
            assert health["ok"] is True and health["queue_depth"] == 4
        finally:
            server.close()

    def test_unknown_path_is_404(self):
        server = MetricsHTTPServer(MetricsRegistry(), port=0).start()
        host, port = server.address
        try:
            try:
                urllib.request.urlopen(f"http://{host}:{port}/nope")
                raise AssertionError("expected HTTP 404")
            except urllib.error.HTTPError as exc:
                assert exc.code == 404
        finally:
            server.close()

    def test_scrape_does_not_mutate_registry(self):
        registry = populated_registry()
        before = registry.snapshot()
        render_openmetrics(registry)
        assert registry.snapshot() == before


class TestTelemetryWriter:
    def test_periodic_lines_plus_final_on_close(self, tmp_path):
        registry = populated_registry()
        path = tmp_path / "telemetry.jsonl"
        writer = TelemetrySnapshotWriter(
            registry, str(path), interval_seconds=0.05,
            extra=lambda: {"queue_depth": 1},
        ).start()
        try:
            import time

            deadline = time.monotonic() + 5.0
            while writer.lines_written < 2 and time.monotonic() < deadline:
                time.sleep(0.01)
        finally:
            writer.close()
        lines = path.read_text().strip().splitlines()
        assert len(lines) >= 3  # two periodic + the final close() line
        for line in lines:
            record = json.loads(line)
            assert record["queue_depth"] == 1
            assert "ts" in record and "metrics" in record
            assert "counter" in record["metrics"]

    def test_extra_failure_never_kills_the_line(self, tmp_path):
        def boom():
            raise RuntimeError("extra exploded")

        path = tmp_path / "telemetry.jsonl"
        writer = TelemetrySnapshotWriter(
            MetricsRegistry(), str(path), interval_seconds=60.0, extra=boom
        )
        writer.close()  # close writes the final line even if never started
        record = json.loads(path.read_text().strip().splitlines()[-1])
        assert "extra exploded" in record["extra_error"]
        assert "metrics" in record
