"""Tests for the central metrics registry."""

import json

import pytest

from repro.obs.registry import (
    DEFAULT_BUCKETS,
    OVERFLOW_LABELS,
    Histogram,
    MetricsRegistry,
)


class TestInstruments:
    def test_counter_get_or_create_identity(self):
        registry = MetricsRegistry()
        a = registry.counter("plan_cache.hits", plan="ab12")
        b = registry.counter("plan_cache.hits", plan="ab12")
        assert a is b
        a.inc()
        b.inc(2)
        assert registry.value("plan_cache.hits", plan="ab12") == 3.0

    def test_labels_distinguish_instruments(self):
        registry = MetricsRegistry()
        registry.counter("sampler.rows_out", address="r.0").inc(10)
        registry.counter("sampler.rows_out", address="r.1").inc(5)
        assert registry.value("sampler.rows_out", address="r.0") == 10.0
        assert registry.total("sampler.rows_out") == 15.0
        assert len(registry) == 2

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        assert registry.counter("m", a="1", b="2") is registry.counter("m", b="2", a="1")

    def test_gauge_holds_last_value(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("sampler.effective_rate", address="r.0")
        assert gauge.snapshot() is None
        gauge.set(0.097)
        gauge.set(0.101)
        assert registry.value("sampler.effective_rate", address="r.0") == 0.101

    def test_cross_kind_name_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered as counter"):
            registry.gauge("x")

    def test_value_absent_is_none_total_absent_is_zero(self):
        registry = MetricsRegistry()
        assert registry.value("never") is None
        assert registry.total("never") == 0.0


class TestHistogram:
    def test_percentiles_from_buckets(self):
        hist = Histogram(buckets=(0.01, 0.1, 1.0))
        for _ in range(98):
            hist.observe(0.005)
        hist.observe(0.5)
        hist.observe(2.0)
        assert hist.count == 100
        assert hist.percentile(0.5) == 0.01      # bucket upper bound
        assert hist.percentile(0.99) == 1.0
        assert hist.min == 0.005 and hist.max == 2.0
        assert hist.mean == pytest.approx((98 * 0.005 + 0.5 + 2.0) / 100)

    def test_percentile_clamped_to_max(self):
        hist = Histogram(buckets=(1.0, 10.0))
        hist.observe(0.2)
        assert hist.percentile(0.99) == 0.2  # never reports above the max seen

    def test_empty_percentile_is_none(self):
        assert Histogram().percentile(0.5) is None

    def test_default_buckets_span_operator_to_query_scale(self):
        assert DEFAULT_BUCKETS[0] <= 0.0001 and DEFAULT_BUCKETS[-1] >= 60.0

    def test_registry_histogram_snapshot_fields(self):
        registry = MetricsRegistry()
        registry.histogram("task_seconds", pool="thread").observe(0.02)
        snap = registry.snapshot()["histogram"]["task_seconds"][0]
        assert snap["labels"] == {"pool": "thread"}
        assert snap["count"] == 1 and snap["sum"] == pytest.approx(0.02)
        assert {"min", "max", "mean", "p50", "p95", "p99"} <= set(snap)


class TestHarvest:
    def test_snapshot_is_json_able_and_grouped(self):
        registry = MetricsRegistry()
        registry.counter("queries").inc(3)
        registry.gauge("rate", address="r").set(0.5)
        registry.histogram("seconds").observe(0.1)
        snap = json.loads(registry.to_json())
        assert snap["counter"]["queries"][0]["value"] == 3.0
        assert snap["gauge"]["rate"][0] == {"labels": {"address": "r"}, "value": 0.5}
        assert snap["histogram"]["seconds"][0]["count"] == 1

    def test_reset_returns_final_snapshot_then_zeroes(self):
        registry = MetricsRegistry()
        registry.counter("queries").inc(7)
        registry.histogram("seconds").observe(1.0)
        final = registry.reset()
        assert final["counter"]["queries"][0]["value"] == 7.0
        # Instruments survive (same objects, same length) but read zero.
        assert len(registry) == 2
        assert registry.value("queries") == 0.0
        assert registry.snapshot()["histogram"]["seconds"][0]["count"] == 0


class TestCardinalityGuard:
    def test_overflow_collapses_past_the_cap(self):
        registry = MetricsRegistry(max_labelsets_per_metric=4)
        for i in range(10):
            registry.counter("queries", tenant=f"t{i}").inc()
        # 4 real label-sets plus one shared overflow bucket.
        names = [
            (name, labels)
            for kind, name, labels, _ in registry.instruments()
            if name == "queries"
        ]
        assert len(names) == 5
        assert ("queries", OVERFLOW_LABELS) in names
        assert registry.value("queries", **OVERFLOW_LABELS) == 6.0
        assert registry.total("queries") == 10.0

    def test_overflow_counter_records_spills_per_metric(self):
        registry = MetricsRegistry(max_labelsets_per_metric=2)
        for i in range(5):
            registry.counter("a", t=f"{i}").inc()
            registry.counter("b", t=f"{i}").inc()
        assert registry.value(
            MetricsRegistry.OVERFLOW_COUNTER, metric="a"
        ) == 3.0
        assert registry.value(
            MetricsRegistry.OVERFLOW_COUNTER, metric="b"
        ) == 3.0

    def test_existing_labelsets_still_resolve_after_cap(self):
        registry = MetricsRegistry(max_labelsets_per_metric=2)
        first = registry.counter("m", t="0")
        registry.counter("m", t="1")
        registry.counter("m", t="2")  # overflows
        assert registry.counter("m", t="0") is first

    def test_unlabeled_metrics_never_overflow(self):
        registry = MetricsRegistry(max_labelsets_per_metric=1)
        registry.counter("plain").inc()
        registry.counter("labeled", t="a").inc()
        registry.counter("labeled", t="b").inc()  # overflow
        # The bare (no-label) instrument is exempt from the cap.
        registry.counter("plain").inc()
        assert registry.value("plain") == 2.0

    def test_overflowed_exposition_stays_valid_openmetrics(self):
        from repro.obs.export import render_openmetrics, validate_openmetrics

        registry = MetricsRegistry(max_labelsets_per_metric=2)
        for i in range(6):
            registry.counter("queries", tenant=f"t{i}").inc()
        text = render_openmetrics(registry)
        assert validate_openmetrics(text) == []
        assert 'overflow="true"' in text

    def test_cap_must_be_positive(self):
        with pytest.raises(ValueError):
            MetricsRegistry(max_labelsets_per_metric=0)
