"""Tests for sampling dominance: rule table, plan cores, and *empirical*
verification of the switching rule (Proposition 6) end-to-end."""

import pytest

from repro.algebra.aggregates import sum_
from repro.algebra.builder import scan
from repro.algebra.expressions import col
from repro.algebra.logical import Aggregate, SamplerNode
from repro.core.dominance import RULES, core_of, empirical_dominance, reseed_plan
from repro.samplers.distinct import DistinctSpec
from repro.samplers.uniform import UniformSpec
from repro.samplers.universe import UniverseSpec


class TestRuleTable:
    def test_paper_rules_present(self):
        for name in ("U1", "U2", "U3", "D1", "D2a", "D2b", "D3a", "V1", "V2", "V3a", "V3b"):
            assert name in RULES

    def test_weak_rules_marked(self):
        assert RULES["D2b"].weak
        assert not RULES["U2"].weak

    def test_switching_rules(self):
        assert "switch-VU" in RULES and "switch-UD" in RULES


class TestCore:
    def test_core_strips_samplers(self, sales_db):
        base = scan(sales_db, "sales").node
        plan = Aggregate(
            SamplerNode(base, UniformSpec(0.1)), ("s_item",), [sum_(col("s_amount"), "rev")]
        )
        assert core_of(plan).key() == Aggregate(base, ("s_item",), [sum_(col("s_amount"), "rev")]).key()

    def test_same_core_different_samplers(self, sales_db):
        base = scan(sales_db, "sales").node
        aggs = [sum_(col("s_amount"), "rev")]
        p1 = Aggregate(SamplerNode(base, UniformSpec(0.1)), ("s_item",), aggs)
        p2 = Aggregate(SamplerNode(base, DistinctSpec(["s_item"], 5, 0.1)), ("s_item",), aggs)
        assert core_of(p1).key() == core_of(p2).key()


class TestReseed:
    def test_reseed_changes_sample(self, sales_db):
        from repro.engine.executor import Executor

        base = scan(sales_db, "sales").node
        plan = Aggregate(
            SamplerNode(base, UniformSpec(0.1, seed=1)), ("s_item",), [sum_(col("s_amount"), "rev")]
        )
        ex = Executor(sales_db)
        a = ex.execute(plan).table.column("rev")
        b = ex.execute(reseed_plan(plan, 99)).table.column("rev")
        assert not (a == b).all()

    def test_reseed_preserves_universe_family(self, sales_db):
        left = SamplerNode(scan(sales_db, "sales").node, UniverseSpec(["s_cust"], 0.2, seed=5))
        right = SamplerNode(
            scan(sales_db, "returns").node, UniverseSpec(["r_cust"], 0.2, seed=5, emit_weight=False)
        )
        from repro.algebra.logical import Join

        join = Join(left.child, right.child, ["s_cust"], ["r_cust"]).with_children([left, right])
        reseeded = reseed_plan(join, 3)
        specs = [n.spec for n in reseeded.walk() if isinstance(n, SamplerNode)]
        assert specs[0].same_subspace_as(specs[1])
        assert specs[0].emit_weight != specs[1].emit_weight


class TestEmpiricalDominance:
    """Proposition 6: Universe => Uniform => Distinct in accuracy order."""

    def _plan(self, sales_db, spec):
        base = scan(sales_db, "sales").node
        return Aggregate(SamplerNode(base, spec), ("s_item",), [sum_(col("s_amount"), "rev")])

    @pytest.mark.slow
    def test_uniform_dominated_by_distinct(self, sales_db):
        p = 0.1
        uniform_plan = self._plan(sales_db, UniformSpec(p, seed=1))
        distinct_plan = self._plan(sales_db, DistinctSpec(["s_item"], delta=30, p=p, seed=1))
        result = empirical_dominance(
            uniform_plan, distinct_plan, sales_db, ("s_item",), "rev", trials=25
        )
        assert result.c_dominates  # distinct never misses a stratified group
        assert result.miss_rate_2 == 0.0

    @pytest.mark.slow
    def test_universe_dominated_by_uniform(self, sales_db):
        p = 0.1
        universe_plan = self._plan(sales_db, UniverseSpec(["s_cust"], p, seed=1))
        uniform_plan = self._plan(sales_db, UniformSpec(p, seed=1))
        result = empirical_dominance(
            universe_plan, uniform_plan, sales_db, ("s_item",), "rev", trials=25
        )
        # Uniform has no worse variance and no worse coverage than universe.
        assert result.v_dominates
        assert result.c_dominates
