"""Unit tests for the logical sampler state {S, U, ds, sfm}."""

from repro.core.sampler_state import SamplerState


class TestUpdates:
    def test_with_strat_unions(self):
        state = SamplerState(strat_cols=frozenset({"a"}))
        assert state.with_strat({"b"}).strat_cols == frozenset({"a", "b"})

    def test_with_univ_sets_family(self):
        state = SamplerState().with_univ({"k"}, family=7)
        assert state.univ_cols == frozenset({"k"})
        assert state.family == 7

    def test_scaled_ds_and_sfm(self):
        state = SamplerState(ds=0.5, sfm=2.0)
        assert state.scaled_ds(0.5).ds == 0.25
        assert state.scaled_sfm(3.0).sfm == 6.0

    def test_immutable(self):
        state = SamplerState()
        state.with_strat({"a"})
        assert state.strat_cols == frozenset()


class TestRename:
    def test_renames_all_column_sets(self):
        state = SamplerState(
            strat_cols=frozenset({"a", "b"}),
            univ_cols=frozenset({"a"}),
            cd_cols=frozenset({"b"}),
            opt_cols=frozenset({"b"}),
            value_cols=frozenset({"c"}),
        )
        renamed = state.renamed({"a": "x", "b": "y", "c": "z"})
        assert renamed.strat_cols == frozenset({"x", "y"})
        assert renamed.univ_cols == frozenset({"x"})
        assert renamed.cd_cols == frozenset({"y"})
        assert renamed.opt_cols == frozenset({"y"})
        assert renamed.value_cols == frozenset({"z"})


class TestDissonance:
    def test_no_overlap_is_fine(self):
        state = SamplerState(strat_cols=frozenset({"a"}), univ_cols=frozenset({"k"}))
        assert not state.dissonant()

    def test_full_overlap_is_dissonant(self):
        state = SamplerState(strat_cols=frozenset({"k"}), univ_cols=frozenset({"k"}))
        assert state.dissonant()

    def test_count_distinct_overlap_allowed(self):
        state = SamplerState(
            strat_cols=frozenset({"k"}),
            univ_cols=frozenset({"k"}),
            cd_cols=frozenset({"k"}),
        )
        assert not state.dissonant()

    def test_small_overlap_allowed(self):
        state = SamplerState(
            strat_cols=frozenset({"a", "b", "c", "k"}),
            univ_cols=frozenset({"k", "j", "m"}),
        )
        assert not state.dissonant()


class TestKey:
    def test_key_round_trips(self):
        a = SamplerState(strat_cols=frozenset({"a"}), ds=0.5)
        b = SamplerState(strat_cols=frozenset({"a"}), ds=0.5)
        assert a.key() == b.key()

    def test_key_distinguishes_ds(self):
        assert SamplerState(ds=0.5).key() != SamplerState(ds=0.6).key()

    def test_key_distinguishes_family(self):
        assert SamplerState(family=1).key() != SamplerState(family=2).key()
