"""``partition_feasible``: can any row of a summarized partition satisfy
a predicate?

The contract is asymmetric on purpose: ``False`` requires *proof* of
infeasibility (the partition is then pruned), while every unknown —
missing summary, unhandled expression shape, incomparable types —
returns ``True`` and retains the partition. NaN rows satisfy ``!=`` and
nothing else (NumPy comparison semantics).
"""

import numpy as np
import pytest

from repro.algebra.expressions import And, Cmp, IsIn, Not, Or, col, lit
from repro.core.pushdown import partition_feasible, prune_conjuncts
from repro.stats import ColumnSummary


def summarize(**arrays):
    return {name: ColumnSummary.from_array(np.asarray(values)) for name, values in arrays.items()}


# x spans [10, 20] with 64+ distinct values so only min/max (no exact
# value set) is available; y has an exact value set {1, 3, 5}.
WIDE = summarize(x=np.linspace(10, 20, 80), y=[1, 3, 5])


class TestIntervals:
    @pytest.mark.parametrize(
        "predicate,feasible",
        [
            (col("x") == lit(15.0), True),
            (col("x") == lit(25.0), False),
            (col("x") == lit(5.0), False),
            (col("x") < lit(10.0), False),
            (col("x") < lit(10.5), True),
            (col("x") <= lit(10.0), True),
            (col("x") > lit(20.0), False),
            (col("x") >= lit(20.0), True),
            (col("x") != lit(15.0), True),
        ],
    )
    def test_min_max(self, predicate, feasible):
        assert partition_feasible(predicate, WIDE) is feasible

    def test_not_equal_on_constant_column(self):
        constant = summarize(c=[7, 7, 7])
        assert partition_feasible(col("c") != lit(7), constant) is False
        assert partition_feasible(col("c") != lit(8), constant) is True

    def test_literal_on_the_left_is_flipped(self):
        assert partition_feasible(Cmp(">", lit(25.0), col("x")), WIDE) is True
        assert partition_feasible(Cmp("<", lit(25.0), col("x")), WIDE) is False


class TestValueSets:
    def test_equality_uses_exact_values(self):
        # 2 is inside [1, 5] but provably absent from {1, 3, 5}.
        assert partition_feasible(col("y") == lit(2), WIDE) is False
        assert partition_feasible(col("y") == lit(3), WIDE) is True

    def test_isin(self):
        assert partition_feasible(IsIn(col("y"), (2, 4)), WIDE) is False
        assert partition_feasible(IsIn(col("y"), (2, 5)), WIDE) is True
        assert partition_feasible(IsIn(col("x"), (11.0,)), WIDE) is True
        assert partition_feasible(IsIn(col("x"), (25.0,)), WIDE) is False

    def test_not_isin(self):
        assert partition_feasible(Not(IsIn(col("y"), (1, 3, 5))), WIDE) is False
        assert partition_feasible(Not(IsIn(col("y"), (1, 3))), WIDE) is True


class TestNulls:
    ALL_NULL = summarize(z=[np.nan, np.nan])

    def test_nan_satisfies_only_not_equal(self):
        assert partition_feasible(col("z") != lit(1.0), self.ALL_NULL) is True
        for predicate in (
            col("z") == lit(1.0),
            col("z") < lit(1.0),
            col("z") >= lit(1.0),
            IsIn(col("z"), (1.0,)),
        ):
            assert partition_feasible(predicate, self.ALL_NULL) is False

    def test_mixed_nulls_keep_not_equal_feasible(self):
        mixed = summarize(z=[5.0, np.nan])
        assert partition_feasible(col("z") != lit(5.0), mixed) is True


class TestBooleanStructure:
    def test_and_prunes_when_any_conjunct_does(self):
        predicate = (col("x") > lit(12.0)) & (col("y") == lit(2))
        assert partition_feasible(predicate, WIDE) is False
        assert len(prune_conjuncts(predicate)) == 2

    def test_or_retains_when_any_branch_feasible(self):
        feasible = Or(col("x") == lit(25.0), col("y") == lit(3))
        infeasible = Or(col("x") == lit(25.0), col("y") == lit(2))
        assert partition_feasible(feasible, WIDE) is True
        assert partition_feasible(infeasible, WIDE) is False

    def test_not_negates_comparisons(self):
        assert partition_feasible(Not(col("x") <= lit(20.0)), WIDE) is False
        assert partition_feasible(Not(col("x") >= lit(20.0)), WIDE) is True


class TestConservatism:
    def test_unknown_column_retained(self):
        assert partition_feasible(col("missing") == lit(1), WIDE) is True

    def test_incomparable_types_retained(self):
        assert partition_feasible(col("x") == lit("north"), WIDE) is True
        assert partition_feasible(col("x") < lit("north"), WIDE) is True

    def test_column_to_column_retained(self):
        assert partition_feasible(Cmp("==", col("x"), col("y")), WIDE) is True

    def test_unhandled_shapes_retained(self):
        assert partition_feasible(And(col("x") * lit(2) == lit(5), lit(True)), WIDE) is True
