"""Unit tests for sampler push-down rules (Figures 5-7)."""

import pytest

from repro.algebra.builder import scan
from repro.algebra.expressions import col
from repro.algebra.logical import Join, Project, SamplerNode, Select, UnionAll
from repro.core.pushdown import (
    alternatives_below,
    push_past_join,
    push_past_project,
    push_past_select,
    push_past_union,
)
from repro.core.sampler_state import SamplerState
from repro.stats.catalog import Catalog
from repro.stats.derivation import StatsDeriver


@pytest.fixture()
def deriver(sales_db):
    return StatsDeriver(Catalog(sales_db))


def family_of(join):
    return hash(join.key()) & 0x7FFFFFFF


def sampler_states(subtree):
    return [n.spec for n in subtree.walk() if isinstance(n, SamplerNode)]


class TestPushPastSelect:
    def test_a1_and_a2_generated(self, sales_db, deriver):
        select = Select(scan(sales_db, "sales").node, col("s_day") > 100)
        state = SamplerState(strat_cols=frozenset({"s_item"}))
        alts = push_past_select(state, select, deriver)
        assert len(alts) == 2
        states = [sampler_states(a)[0] for a in alts]
        a1 = next(s for s in states if "s_day" in s.strat_cols)
        a2 = next(s for s in states if "s_day" not in s.strat_cols)
        assert a1.ds == 1.0
        assert a2.ds < 1.0  # penalized by predicate selectivity

    def test_already_stratified_is_free(self, sales_db, deriver):
        select = Select(scan(sales_db, "sales").node, col("s_item") == 2)
        state = SamplerState(strat_cols=frozenset({"s_item"}))
        alts = push_past_select(state, select, deriver)
        assert len(alts) == 1
        assert sampler_states(alts[0])[0].ds == 1.0

    def test_result_shape_select_above_sampler(self, sales_db, deriver):
        select = Select(scan(sales_db, "sales").node, col("s_day") > 100)
        alts = push_past_select(SamplerState(), select, deriver)
        for alt in alts:
            assert isinstance(alt, Select)
            assert isinstance(alt.child, SamplerNode)


class TestPushPastProject:
    def test_pure_rename(self, sales_db, deriver):
        project = Project(scan(sales_db, "sales").node, {"item": col("s_item"), "amt": col("s_amount")})
        state = SamplerState(strat_cols=frozenset({"item"}))
        alts = push_past_project(state, project, deriver)
        assert len(alts) == 1
        assert sampler_states(alts[0])[0].strat_cols == frozenset({"s_item"})

    def test_computed_stratification_falls_back_to_inputs(self, sales_db, deriver):
        project = Project(
            scan(sales_db, "sales").node,
            {"bucket": col("s_day") % 7, "amt": col("s_amount")},
        )
        state = SamplerState(strat_cols=frozenset({"bucket"}))
        alts = push_past_project(state, project, deriver)
        assert sampler_states(alts[0])[0].strat_cols == frozenset({"s_day"})

    def test_computed_universe_blocks_push(self, sales_db, deriver):
        project = Project(scan(sales_db, "sales").node, {"h": col("s_cust") % 10})
        state = SamplerState(univ_cols=frozenset({"h"}))
        assert push_past_project(state, project, deriver) == []


class TestPushPastJoin:
    @pytest.fixture()
    def join(self, sales_db):
        return Join(
            scan(sales_db, "sales").node, scan(sales_db, "item").node, ["s_item"], ["i_item"]
        )

    def test_one_side_alternatives_exist(self, sales_db, deriver, join):
        state = SamplerState(strat_cols=frozenset({"i_cat"}))
        alts = push_past_join(state, join, deriver, family_of)
        assert alts
        one_sided = [a for a in alts if len(sampler_states(a)) == 1]
        assert one_sided

    def test_missing_strat_replaced_by_join_keys_with_sfm(self, sales_db, deriver, join):
        state = SamplerState(strat_cols=frozenset({"i_cat"}))
        alts = push_past_join(state, join, deriver, family_of)
        left_states = [
            sampler_states(a)[0]
            for a in alts
            if len(sampler_states(a)) == 1 and isinstance(a.left, SamplerNode)
        ]
        assert left_states
        replaced = left_states[0]
        assert "s_item" in replaced.strat_cols
        # i_item has 40 values, i_cat has 5: support correction is 40/5.
        assert replaced.sfm == pytest.approx(8.0)

    def test_both_sides_introduce_universe_family(self, sales_db, deriver):
        join = Join(
            scan(sales_db, "sales").node, scan(sales_db, "returns").node, ["s_cust"], ["r_cust"]
        )
        state = SamplerState()
        alts = push_past_join(state, join, deriver, family_of)
        paired = [a for a in alts if len(sampler_states(a)) == 2]
        assert paired
        left_state, right_state = sampler_states(paired[0])
        assert left_state.univ_cols == frozenset({"s_cust"})
        assert right_state.univ_cols == frozenset({"r_cust"})
        assert left_state.family == right_state.family is not None

    def test_existing_universe_requirement_blocks_mismatched_push(self, sales_db, deriver, join):
        # Universe requirement on a non-key column cannot cross this join on
        # both sides (PrepareUnivCol returns nothing).
        state = SamplerState(univ_cols=frozenset({"s_cust"}))
        alts = push_past_join(state, join, deriver, family_of)
        assert all(len(sampler_states(a)) == 1 for a in alts)

    def test_ds_scaled_by_join_selectivity(self, sales_db, deriver):
        # returns has ~10% of sales rows: pushing a sampler below the
        # sales side of sales-join-returns must scale ds down.
        join = Join(
            scan(sales_db, "sales").node, scan(sales_db, "returns").node, ["s_cust"], ["r_cust"]
        )
        state = SamplerState(strat_cols=frozenset({"s_item"}))
        alts = push_past_join(state, join, deriver, family_of)
        left_states = [
            sampler_states(a)[0]
            for a in alts
            if len(sampler_states(a)) == 1 and isinstance(a.left, SamplerNode)
        ]
        assert any(s.ds <= 1.0 for s in left_states)


class TestPushPastUnion:
    def test_cloned_into_branches(self, sales_db, deriver):
        a = scan(sales_db, "sales").select("s_item", "s_amount").node
        b = scan(sales_db, "sales").select("s_item", "s_amount").node
        union = UnionAll([a, b])
        state = SamplerState(strat_cols=frozenset({"s_item"}))
        alts = push_past_union(state, union, deriver)
        assert len(alts) == 1
        assert len(sampler_states(alts[0])) == 2


class TestDispatch:
    def test_alternatives_below_dispatches(self, sales_db, deriver):
        select = Select(scan(sales_db, "sales").node, col("s_day") > 10)
        node = SamplerNode(select, SamplerState())
        assert alternatives_below(node, deriver, family_of)

    def test_physical_spec_not_pushed(self, sales_db, deriver):
        from repro.samplers.uniform import UniformSpec

        select = Select(scan(sales_db, "sales").node, col("s_day") > 10)
        node = SamplerNode(select, UniformSpec(0.1))
        assert alternatives_below(node, deriver, family_of) == []

    def test_scan_child_has_no_alternatives(self, sales_db, deriver):
        node = SamplerNode(scan(sales_db, "sales").node, SamplerState())
        assert alternatives_below(node, deriver, family_of) == []
