"""Tests for sampled-view reuse (the paper's §7 future-work extension)."""

import numpy as np
import pytest

from repro.algebra.aggregates import count, sum_
from repro.algebra.builder import scan
from repro.algebra.expressions import col
from repro.algebra.logical import Aggregate, SamplerNode
from repro.core.views import MaterializingExecutor, ViewStore
from repro.engine.executor import Executor
from repro.errors import PlanError
from repro.samplers.uniform import UniformSpec


def sampled_plan(db, seed=1, p=0.1):
    base = scan(db, "sales").node
    return Aggregate(
        SamplerNode(base, UniformSpec(p, seed=seed)),
        ("s_item",),
        [sum_(col("s_amount"), "rev")],
    )


class TestViewStore:
    def test_put_and_get_by_structure(self, sales_db):
        store = ViewStore()
        plan = sampled_plan(sales_db)
        sampler = plan.child
        table = Executor(sales_db).execute(sampler).table
        store.put(sampler, table)
        # A structurally identical node (fresh object) hits the cache.
        other = sampled_plan(sales_db).child
        view = store.get(other)
        assert view is not None
        assert view.rows == table.num_rows

    def test_different_seed_misses(self, sales_db):
        store = ViewStore()
        sampler = sampled_plan(sales_db, seed=1).child
        store.put(sampler, Executor(sales_db).execute(sampler).table)
        assert store.get(sampled_plan(sales_db, seed=2).child) is None

    def test_epoch_bump_invalidates(self, sales_db):
        store = ViewStore()
        sampler = sampled_plan(sales_db).child
        store.put(sampler, Executor(sales_db).execute(sampler).table)
        store.bump_epoch("sales")
        assert store.get(sampler) is None
        assert len(store) == 0

    def test_unrelated_epoch_keeps_view(self, sales_db):
        store = ViewStore()
        sampler = sampled_plan(sales_db).child
        store.put(sampler, Executor(sales_db).execute(sampler).table)
        store.bump_epoch("item")
        assert store.get(sampler) is not None

    def test_lru_eviction_under_budget(self, sales_db):
        executor = Executor(sales_db)
        first = sampled_plan(sales_db, seed=1).child
        first_table = executor.execute(first).table
        store = ViewStore(max_rows=int(first_table.num_rows * 1.5))
        store.put(first, first_table)
        second = sampled_plan(sales_db, seed=2).child
        store.get(first)  # refresh LRU position of `first`
        store.put(second, executor.execute(second).table)
        assert store.total_rows() <= store.max_rows
        assert len(store) == 1

    def test_only_samplers_materialize(self, sales_db):
        store = ViewStore()
        with pytest.raises(PlanError):
            store.put(scan(sales_db, "sales").node, sales_db.table("sales"))

    def test_oversized_view_skipped(self, sales_db):
        store = ViewStore(max_rows=3)
        sampler = sampled_plan(sales_db).child
        assert store.put(sampler, Executor(sales_db).execute(sampler).table) is None


class TestMaterializingExecutor:
    def test_second_run_reuses_view(self, sales_db):
        wrapper = MaterializingExecutor(Executor(sales_db))
        plan = sampled_plan(sales_db)
        first = wrapper.execute(plan)
        assert len(wrapper.store) == 1
        second = wrapper.execute(sampled_plan(sales_db))
        # The answer is identical (same sampler seed -> same sample).
        np.testing.assert_allclose(
            np.sort(first.table.column("rev")), np.sort(second.table.column("rev"))
        )
        assert wrapper.store.stats()["hits"] >= 1

    def test_reuse_is_cheaper(self, sales_db):
        wrapper = MaterializingExecutor(Executor(sales_db))
        plan = sampled_plan(sales_db)
        first = wrapper.execute(plan)
        second = wrapper.execute(sampled_plan(sales_db))
        # Reading the materialized view skips the full base-table scan.
        assert second.cost.machine_hours < first.cost.machine_hours

    def test_prefix_reuse_across_different_queries(self, sales_db):
        """Two different aggregates over the same sampled sub-expression
        share the view."""
        wrapper = MaterializingExecutor(Executor(sales_db))
        wrapper.execute(sampled_plan(sales_db))
        sampler = sampled_plan(sales_db).child
        other_query = Aggregate(sampler, ("s_day",), [count("n")])
        result = wrapper.execute(other_query)
        assert wrapper.store.stats()["hits"] >= 1
        assert result.table.num_rows > 0

    def test_stale_view_not_reused(self, sales_db):
        wrapper = MaterializingExecutor(Executor(sales_db))
        wrapper.execute(sampled_plan(sales_db))
        wrapper.store.bump_epoch("sales")
        wrapper.execute(sampled_plan(sales_db))
        # View was rebuilt rather than served stale.
        assert len(wrapper.store) == 1
