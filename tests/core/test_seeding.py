"""Unit tests for sampler seeding (Figure 4)."""

from repro.algebra.aggregates import count_distinct, max_, sum_, sum_if
from repro.algebra.builder import scan
from repro.algebra.expressions import col
from repro.algebra.logical import Aggregate, SamplerNode
from repro.core.seeding import initial_state_for, seed_samplers


def find_samplers(plan):
    return [n for n in plan.walk() if isinstance(n, SamplerNode)]


class TestSeeding:
    def test_sampler_inserted_below_aggregate(self, sales_db):
        q = scan(sales_db, "sales").groupby("s_item").agg(sum_(col("s_amount"), "rev")).build("q")
        seeded, n = seed_samplers(q.plan)
        assert n == 1
        assert isinstance(seeded, Aggregate)
        assert isinstance(seeded.child, SamplerNode)

    def test_min_max_not_seeded(self, sales_db):
        q = scan(sales_db, "sales").groupby("s_item").agg(max_(col("s_amount"), "m")).build("q")
        seeded, n = seed_samplers(q.plan)
        assert n == 0
        assert not find_samplers(seeded)

    def test_nested_aggregates_both_seeded(self, sales_db):
        inner = scan(sales_db, "sales").groupby("s_item", "s_day").agg(sum_(col("s_amount"), "rev"))
        q = inner.groupby("s_item").agg(sum_(col("rev"), "total")).build("q")
        _seeded, n = seed_samplers(q.plan)
        assert n == 2

    def test_idempotent(self, sales_db):
        q = scan(sales_db, "sales").groupby("s_item").agg(sum_(col("s_amount"), "rev")).build("q")
        once, _ = seed_samplers(q.plan)
        twice, n = seed_samplers(once)
        assert n == 0
        assert twice.key() == once.key()


class TestInitialState:
    def test_group_columns_required(self, sales_db):
        q = scan(sales_db, "sales").groupby("s_item").agg(sum_(col("s_amount"), "rev")).build("q")
        state = initial_state_for(q.plan)
        assert state.strat_cols == frozenset({"s_item"})
        assert state.opt_cols == frozenset()
        assert state.univ_cols == frozenset()
        assert state.ds == 1.0 and state.sfm == 1.0

    def test_condition_columns_optional(self, sales_db):
        q = (
            scan(sales_db, "sales")
            .groupby("s_item")
            .agg(sum_if(col("s_amount"), col("s_day") > 100, "late"))
            .build("q")
        )
        state = initial_state_for(q.plan)
        assert "s_day" in state.strat_cols
        assert "s_day" in state.opt_cols

    def test_count_distinct_columns_tagged(self, sales_db):
        q = (
            scan(sales_db, "sales")
            .groupby("s_item")
            .agg(count_distinct(col("s_cust"), "uniq"))
            .build("q")
        )
        state = initial_state_for(q.plan)
        assert "s_cust" in state.strat_cols
        assert state.cd_cols == frozenset({"s_cust"})

    def test_value_columns_recorded(self, sales_db):
        q = scan(sales_db, "sales").groupby("s_item").agg(sum_(col("s_amount"), "rev")).build("q")
        assert initial_state_for(q.plan).value_cols == frozenset({"s_amount"})
