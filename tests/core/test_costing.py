"""Unit tests for the costing pass (Section 4.2.6): C1/C2 checks, physical
sampler choice, global universe coordination, nesting suppression."""

import pytest

from repro.algebra.builder import scan
from repro.algebra.logical import Join, SamplerNode
from repro.core.costing import (
    CostingOptions,
    choose_physical,
    materialize_plan,
    strip_passthrough,
)
from repro.core.sampler_state import SamplerState
from repro.samplers.base import PassThroughSpec
from repro.samplers.distinct import DistinctSpec
from repro.samplers.uniform import UniformSpec
from repro.samplers.universe import UniverseSpec
from repro.stats.catalog import Catalog
from repro.stats.derivation import StatsDeriver


@pytest.fixture()
def deriver(sales_db):
    return StatsDeriver(Catalog(sales_db))


@pytest.fixture()
def sales_stats(sales_db, deriver):
    return deriver.stats_for(scan(sales_db, "sales").node)


OPTS = CostingOptions()


class TestChoosePhysical:
    def test_high_support_gets_uniform(self, sales_stats):
        # 20k rows over 5 categories worth of support via i_cat? use s_item
        # with 40 strata: support 500 >= needed/max_p.
        state = SamplerState(strat_cols=frozenset({"g"}))  # unknown col -> fallback DV
        state = SamplerState(strat_cols=frozenset())
        decision = choose_physical(state, sales_stats, OPTS, seed=1)
        assert isinstance(decision.spec, UniformSpec)
        assert decision.c1 and decision.c2

    def test_probability_sized_by_requirement(self, sales_stats):
        decision = choose_physical(SamplerState(), sales_stats, OPTS, seed=1)
        needed = OPTS.required_rows_per_group(1.0)
        assert decision.spec.p == pytest.approx(
            min(OPTS.max_probability, needed / sales_stats.rows), rel=0.3
        )

    def test_probability_capped_at_max(self, sales_stats):
        opts = CostingOptions(k=30, error_z=0.1)
        decision = choose_physical(SamplerState(), sales_stats, opts, seed=1)
        assert decision.spec.p <= opts.max_probability

    def test_universe_when_u_required(self, sales_stats):
        # Only 500 customers exist: relax the variance target so the
        # key-subspace support check passes (p * 500 >= k).
        opts = CostingOptions(error_z=0.3)
        state = SamplerState(univ_cols=frozenset({"s_cust"}))
        decision = choose_physical(state, sales_stats, opts, seed=1)
        assert isinstance(decision.spec, UniverseSpec)
        assert decision.spec.columns == ("s_cust",)

    def test_universe_infeasible_with_few_key_values(self, sales_stats):
        # At the default variance target, 500 key values per group are not
        # enough for p <= 0.1: the sampler must decline.
        state = SamplerState(univ_cols=frozenset({"s_cust"}))
        decision = choose_physical(state, sales_stats, OPTS, seed=1)
        assert isinstance(decision.spec, PassThroughSpec)

    def test_thin_stratification_gets_distinct(self, sales_stats):
        # s_cust x s_day: 500 * 365 strata over 20k rows -> support ~0.1.
        state = SamplerState(strat_cols=frozenset({"s_cust", "s_day"}))
        decision = choose_physical(state, sales_stats, OPTS, seed=1)
        # Leak would exceed half the input: pass-through.
        assert isinstance(decision.spec, PassThroughSpec)

    def test_moderate_stratification_gets_distinct(self, sales_db, deriver):
        stats = deriver.stats_for(scan(sales_db, "sales").node)
        state = SamplerState(strat_cols=frozenset({"s_cust"}))  # 500 strata, 40/stratum
        opts = CostingOptions(k=10)  # delta*strata must stay below half the input
        decision = choose_physical(state, stats, opts, seed=1)
        assert isinstance(decision.spec, DistinctSpec)
        assert set(decision.spec.columns) == {"s_cust"}

    def test_excessive_delta_leak_declines(self, sales_db, deriver):
        # With the default delta = 30 the leak (30 * 500 strata) exceeds
        # half the 20k input: no data reduction, pass-through.
        stats = deriver.stats_for(scan(sales_db, "sales").node)
        state = SamplerState(strat_cols=frozenset({"s_cust"}))
        decision = choose_physical(state, stats, OPTS, seed=1)
        assert isinstance(decision.spec, PassThroughSpec)

    def test_dissonance_gives_passthrough(self, sales_stats):
        state = SamplerState(
            strat_cols=frozenset({"s_cust"}), univ_cols=frozenset({"s_cust"})
        )
        decision = choose_physical(state, sales_stats, OPTS, seed=1)
        assert isinstance(decision.spec, PassThroughSpec)

    def test_empty_input_passthrough(self, sales_db, deriver):
        from repro.algebra.expressions import col

        empty = scan(sales_db, "sales").where(col("s_qty") > 10_000).node
        stats = deriver.stats_for(empty)
        stats = stats.with_rows(0.0)
        decision = choose_physical(SamplerState(), stats, OPTS, seed=1)
        assert isinstance(decision.spec, PassThroughSpec)

    def test_distinct_delta_inflated_by_downstream_selectivity(self, sales_db, deriver):
        stats = deriver.stats_for(scan(sales_db, "sales").node)
        state = SamplerState(strat_cols=frozenset({"s_cust"}), ds=0.5)
        decision = choose_physical(state, stats, OPTS, seed=1)
        if isinstance(decision.spec, DistinctSpec):
            assert decision.spec.delta == pytest.approx(OPTS.k / 0.5, rel=0.1)


class TestRequiredRows:
    def test_variance_term_binds_for_high_cv(self):
        opts = CostingOptions()
        assert opts.required_rows_per_group(2.0) > opts.required_rows_per_group(0.5)
        assert opts.required_rows_per_group(0.01) == opts.k


class TestMaterializePlan:
    def test_universe_family_shares_parameters(self, sales_db, deriver):
        join = Join(
            scan(sales_db, "sales").node, scan(sales_db, "returns").node, ["s_cust"], ["r_cust"]
        )
        left = SamplerNode(join.left, SamplerState(univ_cols=frozenset({"s_cust"}), family=9))
        right = SamplerNode(join.right, SamplerState(univ_cols=frozenset({"r_cust"}), family=9))
        plan = join.with_children([left, right])
        physical, decisions = materialize_plan(plan, deriver, CostingOptions(error_z=0.3))
        specs = [
            n.spec for n in physical.walk() if isinstance(n, SamplerNode)
        ]
        assert all(isinstance(s, UniverseSpec) for s in specs)
        assert specs[0].p == specs[1].p
        assert specs[0].seed == specs[1].seed
        assert sum(1 for s in specs if s.emit_weight) == 1

    def test_unsatisfied_family_degrades_to_passthrough(self, sales_db, deriver):
        join = Join(
            scan(sales_db, "sales").node, scan(sales_db, "returns").node, ["s_cust"], ["r_cust"]
        )
        # Right member demands stratification so fine it cannot be universe.
        left = SamplerNode(join.left, SamplerState(univ_cols=frozenset({"s_cust"}), family=3))
        right = SamplerNode(
            join.right,
            SamplerState(
                univ_cols=frozenset({"r_cust"}),
                strat_cols=frozenset({"r_item", "r_cust", "r_amount"}),
                family=3,
            ),
        )
        plan = join.with_children([left, right])
        physical, _ = materialize_plan(plan, deriver)
        specs = [n.spec for n in physical.walk() if isinstance(n, SamplerNode)]
        assert all(isinstance(s, PassThroughSpec) for s in specs)

    def test_nested_sampler_suppressed_keeping_deeper(self, sales_db, deriver):
        base = scan(sales_db, "sales").node
        inner = SamplerNode(base, SamplerState())
        outer = SamplerNode(inner, SamplerState())
        physical, _ = materialize_plan(outer, deriver)
        specs = [n.spec for n in physical.walk() if isinstance(n, SamplerNode)]
        assert isinstance(specs[0], PassThroughSpec)  # outer suppressed
        assert not isinstance(specs[1], PassThroughSpec)  # deeper kept

    def test_strip_passthrough(self, sales_db, deriver):
        base = scan(sales_db, "sales").node
        plan = SamplerNode(base, PassThroughSpec())
        stripped = strip_passthrough(plan)
        assert stripped.key() == base.key()
