"""Unit tests for the accuracy analysis (HT estimators, coverage, unrolling)."""

import numpy as np
import pytest

from repro.core.accuracy import (
    analyze_plan,
    confidence_interval,
    ht_estimate,
    ht_variance_independent,
    ht_variance_universe,
    miss_probability_distinct,
    miss_probability_uniform,
    miss_probability_universe,
    unroll_plan,
)
from repro.algebra.aggregates import sum_
from repro.algebra.builder import scan
from repro.algebra.expressions import col
from repro.algebra.logical import Aggregate, Join, SamplerNode, Select
from repro.samplers.uniform import UniformSpec
from repro.samplers.universe import UniverseSpec
from repro.stats.catalog import Catalog
from repro.stats.derivation import StatsDeriver


class TestHtEstimators:
    def test_estimate_recovers_sum(self, rng):
        values = rng.normal(10, 2, 1000)
        p = 0.2
        mask = rng.random(1000) < p
        estimate = ht_estimate(values[mask], np.full(mask.sum(), 1 / p))
        assert estimate == pytest.approx(values.sum(), rel=0.15)

    def test_variance_independent_matches_empirical(self, rng):
        """The estimated variance should match the Monte-Carlo variance of
        the HT estimator itself."""
        values = rng.exponential(5.0, 2_000)
        p = 0.1
        estimates, predicted = [], []
        for _ in range(200):
            mask = rng.random(2_000) < p
            weights = np.full(int(mask.sum()), 1 / p)
            estimates.append(ht_estimate(values[mask], weights))
            predicted.append(ht_variance_independent(values[mask], weights))
        assert np.mean(predicted) == pytest.approx(np.var(estimates), rel=0.3)

    def test_variance_universe_counts_correlation(self):
        values = np.array([1.0, 1.0, 2.0])
        keys = np.array([7, 7, 9])
        p = 0.5
        # (1-p)/p^2 * ((1+1)^2 + 2^2) = 2 * 8 = 16
        assert ht_variance_universe(values, keys, p) == pytest.approx(16.0)

    def test_variance_nonnegative(self, rng):
        values = rng.normal(size=100)
        weights = np.full(100, 5.0)
        assert ht_variance_independent(values, weights) >= 0

    def test_confidence_interval_symmetric(self):
        lo, hi = confidence_interval(100.0, 25.0)
        assert hi - 100.0 == pytest.approx(100.0 - lo)
        assert hi == pytest.approx(100.0 + 1.96 * 5.0)


class TestMissProbabilities:
    def test_uniform(self):
        assert miss_probability_uniform(0.1, 0) == 1.0
        assert miss_probability_uniform(0.1, 1) == pytest.approx(0.9)
        assert miss_probability_uniform(0.1, 300) < 1e-13

    def test_distinct_with_group_stratification_never_misses(self):
        assert miss_probability_distinct(0.01, 5, stratified_on_group=True) == 0.0

    def test_distinct_without_stratification_like_uniform(self):
        assert miss_probability_distinct(0.1, 10, False) == miss_probability_uniform(0.1, 10)

    def test_universe_uses_key_values(self):
        # Fewer distinct key values per group => higher miss probability.
        assert miss_probability_universe(0.1, 2) > miss_probability_universe(0.1, 50)

    def test_universe_empirical(self, rng):
        """Miss probability for a group spanning g key values ~ (1-p)^g."""
        from repro.engine.table import Table

        p, g = 0.3, 5
        misses = 0
        trials = 300
        for seed in range(trials):
            t = Table("t", {"k": np.arange(g)})
            out = UniverseSpec(["k"], p, seed=seed).apply(t)
            if out.num_rows == 0:
                misses += 1
        assert misses / trials == pytest.approx((1 - p) ** g, abs=0.05)


class TestUnrolling:
    def make_plan(self, sales_db, sampler_spec):
        base = scan(sales_db, "sales").node
        sampled = SamplerNode(base, sampler_spec)
        filtered = Select(sampled, col("s_qty") > 2)
        return Aggregate(filtered, ("s_item",), [sum_(col("s_amount"), "rev")])

    def test_uniform_floats_past_select(self, sales_db):
        unrolled = unroll_plan(self.make_plan(sales_db, UniformSpec(0.1, seed=1)))
        assert unrolled.kind == "uniform"
        assert unrolled.p == 0.1
        assert any(step.rule == "U2" for step in unrolled.steps)

    def test_universe_pair_collapses_via_v3a(self, sales_db):
        left = SamplerNode(scan(sales_db, "sales").node, UniverseSpec(["s_cust"], 0.2, seed=3))
        right = SamplerNode(
            scan(sales_db, "returns").node, UniverseSpec(["r_cust"], 0.2, seed=3, emit_weight=False)
        )
        join = Join(left.child, right.child, ["s_cust"], ["r_cust"]).with_children([left, right])
        plan = Aggregate(join, ("s_item",), [sum_(col("s_amount"), "rev")])
        unrolled = unroll_plan(plan)
        assert unrolled.kind == "universe"
        assert unrolled.p == 0.2
        assert any(step.rule == "V3a" for step in unrolled.steps)

    def test_independent_samplers_compose_with_u3(self, sales_db):
        left = SamplerNode(scan(sales_db, "sales").node, UniformSpec(0.2, seed=1))
        right = SamplerNode(scan(sales_db, "returns").node, UniformSpec(0.5, seed=2))
        join = Join(left.child, right.child, ["s_cust"], ["r_cust"]).with_children([left, right])
        plan = Aggregate(join, (), [sum_(col("s_amount"), "rev")])
        unrolled = unroll_plan(plan)
        assert unrolled.kind == "uniform"
        assert unrolled.p == pytest.approx(0.1)

    def test_no_samplers_returns_none(self, sales_db):
        plan = scan(sales_db, "sales").groupby("s_item").agg(sum_(col("s_amount"), "r")).build("q").plan
        assert unroll_plan(plan) is None


class TestAnalyzePlan:
    def test_report_fields(self, sales_db):
        deriver = StatsDeriver(Catalog(sales_db))
        base = scan(sales_db, "sales").node
        plan = Aggregate(
            SamplerNode(base, UniformSpec(0.1, seed=1)), ("s_item",), [sum_(col("s_amount"), "rev")]
        )
        report = analyze_plan(plan, deriver)
        assert report.groups == 40
        assert report.support_per_group == pytest.approx(500, rel=0.1)
        assert report.miss_probability < 1e-6
        assert 0 < report.relative_standard_error < 1

    def test_meets_goal(self, sales_db):
        deriver = StatsDeriver(Catalog(sales_db))
        base = scan(sales_db, "sales").node
        plan = Aggregate(
            SamplerNode(base, UniformSpec(0.1, seed=1)), ("s_item",), [sum_(col("s_amount"), "rev")]
        )
        assert analyze_plan(plan, deriver).meets_goal(max_error=0.2)
