"""Unit tests for successor rewriting (Table 8) and plan finalization."""

import numpy as np
import pytest

from repro.algebra.aggregates import count_distinct, sum_
from repro.algebra.builder import scan
from repro.algebra.expressions import col
from repro.algebra.logical import Aggregate, Join, SamplerNode
from repro.core.rewrite import WeightedAggregate, finalize_plan, join_key_equivalence, samplers_below
from repro.engine.executor import Executor
from repro.samplers.base import PassThroughSpec
from repro.samplers.uniform import UniformSpec
from repro.samplers.universe import UniverseSpec


class TestJoinKeyEquivalence:
    def test_transitive_classes(self, sales_db):
        plan = (
            scan(sales_db, "sales")
            .join(scan(sales_db, "returns"), on=[("s_cust", "r_cust")])
            .groupby("s_item")
            .agg(sum_(col("s_amount"), "rev"))
            .build("q")
            .plan
        )
        eq = join_key_equivalence(plan)
        assert eq["s_cust"] == eq["r_cust"]

    def test_unrelated_columns_separate(self, sales_db):
        plan = (
            scan(sales_db, "sales")
            .join(scan(sales_db, "item"), on=[("s_item", "i_item")])
            .groupby("i_cat")
            .agg(sum_(col("s_amount"), "rev"))
            .build("q")
            .plan
        )
        eq = join_key_equivalence(plan)
        assert eq.get("s_cust", "s_cust") != eq["s_item"]


class TestSamplersBelow:
    def test_finds_live_samplers(self, sales_db):
        base = scan(sales_db, "sales").node
        plan = Aggregate(SamplerNode(base, UniformSpec(0.1)), ("s_item",), [sum_(col("s_amount"), "r")])
        assert len(samplers_below(plan)) == 1

    def test_ignores_passthrough(self, sales_db):
        base = scan(sales_db, "sales").node
        plan = Aggregate(SamplerNode(base, PassThroughSpec()), ("s_item",), [sum_(col("s_amount"), "r")])
        assert samplers_below(plan) == []

    def test_stops_at_nested_aggregate(self, sales_db):
        base = scan(sales_db, "sales").node
        inner = Aggregate(
            SamplerNode(base, UniformSpec(0.1)), ("s_item", "s_day"), [sum_(col("s_amount"), "r")]
        )
        outer = Aggregate(inner, ("s_item",), [sum_(col("r"), "total")])
        assert samplers_below(outer) == []


class TestFinalize:
    def test_weighted_aggregate_created(self, sales_db):
        base = scan(sales_db, "sales").node
        plan = Aggregate(SamplerNode(base, UniformSpec(0.1)), ("s_item",), [sum_(col("s_amount"), "r")])
        final = finalize_plan(plan)
        assert isinstance(final, WeightedAggregate)
        assert final.compute_ci

    def test_unsampled_aggregate_untouched(self, sales_db):
        plan = (
            scan(sales_db, "sales").groupby("s_item").agg(sum_(col("s_amount"), "r")).build("q").plan
        )
        final = finalize_plan(plan)
        assert not isinstance(final, WeightedAggregate)

    def test_finalize_idempotent(self, sales_db):
        base = scan(sales_db, "sales").node
        plan = Aggregate(SamplerNode(base, UniformSpec(0.1)), ("s_item",), [sum_(col("s_amount"), "r")])
        once = finalize_plan(plan)
        twice = finalize_plan(once)
        assert twice.key() == once.key()

    def test_universe_rescale_through_join_equivalence(self, sales_db):
        """COUNT DISTINCT over s_cust is rescaled when the universe sampler
        sits on the join-equivalent r_cust."""
        sales = scan(sales_db, "sales").node
        returns = SamplerNode(scan(sales_db, "returns").node, UniverseSpec(["r_cust"], 0.25, seed=1))
        join = Join(sales, returns, ["s_cust"], ["r_cust"])
        plan = Aggregate(join, (), [count_distinct(col("s_cust"), "uniq")])
        final = finalize_plan(plan)
        assert isinstance(final, WeightedAggregate)
        assert final.universe_rescale == {"uniq": 4.0}
        assert final.universe_variance is not None

    def test_rescaled_count_distinct_is_accurate(self, sales_db):
        sales = scan(sales_db, "sales").node
        executor = Executor(sales_db)
        exact_plan = Aggregate(
            Join(sales, scan(sales_db, "returns").node, ["s_cust"], ["r_cust"]),
            (),
            [count_distinct(col("s_cust"), "uniq")],
        )
        truth = executor.execute(exact_plan).table.column("uniq")[0]
        estimates = []
        for seed in range(25):
            reseeded = Aggregate(
                Join(
                    sales,
                    SamplerNode(
                        scan(sales_db, "returns").node, UniverseSpec(["r_cust"], 0.25, seed=seed)
                    ),
                    ["s_cust"],
                    ["r_cust"],
                ),
                (),
                [count_distinct(col("s_cust"), "uniq")],
            )
            estimates.append(executor.execute(finalize_plan(reseeded)).table.column("uniq")[0])
        assert np.mean(estimates) == pytest.approx(truth, rel=0.1)
