"""Integration tests for ASALQA: end-to-end sampled plan generation."""

import numpy as np
import pytest

from repro.algebra.builder import scan
from repro.algebra.expressions import col
from repro.core.asalqa import Asalqa, AsalqaOptions
from repro.engine.executor import Executor
from repro.stats.catalog import Catalog
from repro.workloads.tpcds import generate_tpcds, query_by_name


@pytest.fixture(scope="module")
def tpcds():
    return generate_tpcds(scale=0.25, seed=2)


@pytest.fixture(scope="module")
def optimizer(tpcds):
    return Asalqa(Catalog(tpcds))


class TestPlanDecisions:
    def test_star_query_gets_a_sampler(self, tpcds, optimizer):
        result = optimizer.optimize(query_by_name(tpcds, "q02"))
        assert result.approximable
        assert result.sampler_kinds()

    def test_fig1_query_gets_universe_family(self, tpcds, optimizer):
        result = optimizer.optimize(query_by_name(tpcds, "q12"))
        assert result.approximable
        assert "universe" in result.sampler_kinds()
        # All live universe samplers share one probability (the family rule).
        universes = [s for s in result.sampler_specs if s.kind == "universe"]
        assert len({u.p for u in universes}) == 1
        assert sum(1 for u in universes if u.emit_weight) == 1

    def test_min_max_query_unapproximable(self, tpcds, optimizer):
        result = optimizer.optimize(query_by_name(tpcds, "q18"))
        assert not result.approximable
        assert result.plan.key() == result.baseline_plan.key()

    def test_per_customer_grouping_unapproximable(self, tpcds, optimizer):
        result = optimizer.optimize(query_by_name(tpcds, "q21"))
        assert not result.approximable

    def test_estimated_gain_positive_when_approximable(self, tpcds, optimizer):
        result = optimizer.optimize(query_by_name(tpcds, "q02"))
        assert result.estimated_gain() > 1.0

    def test_qo_time_recorded(self, tpcds, optimizer):
        result = optimizer.optimize(query_by_name(tpcds, "q02"))
        assert result.qo_time_seconds > 0

    def test_summary_fields(self, tpcds, optimizer):
        summary = optimizer.optimize(query_by_name(tpcds, "q02")).summary()
        for key in ("query", "approximable", "samplers", "estimated_gain", "alternatives", "qo_time_s"):
            assert key in summary


class TestAnswersAreAccurate:
    def test_sampled_answer_close_to_exact(self, tpcds, optimizer):
        result = optimizer.optimize(query_by_name(tpcds, "q02"))
        executor = Executor(tpcds)
        exact = executor.execute(result.baseline_plan).table
        approx = executor.execute(result.plan).table
        truth = dict(zip(exact.column("i_category").tolist(), exact.column("agg1").tolist()))
        got = dict(zip(approx.column("i_category").tolist(), approx.column("agg1").tolist()))
        assert set(got) == set(truth)  # no missed groups
        errors = [abs(got[k] - truth[k]) / abs(truth[k]) for k in truth]
        assert float(np.median(errors)) < 0.15

    def test_ci_columns_in_sampled_answer(self, tpcds, optimizer):
        result = optimizer.optimize(query_by_name(tpcds, "q02"))
        table = Executor(tpcds).execute(result.plan).table
        assert table.has_column("agg1__ci")

    def test_unapproximable_answer_is_exact(self, tpcds, optimizer):
        result = optimizer.optimize(query_by_name(tpcds, "q18"))
        executor = Executor(tpcds)
        exact = executor.execute(result.baseline_plan).table
        got = executor.execute(result.plan).table
        np.testing.assert_array_equal(exact.column("max_price"), got.column("max_price"))


class TestBaselineGuard:
    def test_sampled_plan_never_costlier_than_baseline(self, tpcds, optimizer):
        for name in ("q02", "q07", "q12", "q15", "q19"):
            result = optimizer.optimize(query_by_name(tpcds, name))
            if result.approximable:
                assert result.estimated_cost.machine_hours < result.baseline_cost.machine_hours


class TestExploration:
    def test_alternatives_deduplicated(self, tpcds):
        options = AsalqaOptions(max_alternatives=64)
        optimizer = Asalqa(Catalog(tpcds), options)
        from repro.core.seeding import seed_samplers

        seeded, _ = seed_samplers(query_by_name(tpcds, "q12").plan)
        plans = optimizer._explore(seeded)
        keys = [p.key() for p in plans]
        assert len(keys) == len(set(keys))

    def test_alternative_cap_respected(self, tpcds):
        options = AsalqaOptions(max_alternatives=5)
        optimizer = Asalqa(Catalog(tpcds), options)
        result = optimizer.optimize(query_by_name(tpcds, "q12"))
        assert result.alternatives_explored <= 5


class TestScalarQueries:
    def test_scalar_aggregate_sampled(self, tpcds, optimizer):
        result = optimizer.optimize(query_by_name(tpcds, "q15"))
        assert result.approximable
        table = Executor(tpcds).execute(result.plan).table
        assert table.num_rows == 1

    def test_no_aggregate_query_unapproximable(self, tpcds, optimizer):
        query = scan(tpcds, "store_sales").where(col("ss_quantity") > 5).build("raw_filter")
        result = optimizer.optimize(query)
        assert not result.approximable
