"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_plan_args(self):
        args = build_parser().parse_args(["plan", "q12", "--scale", "0.1"])
        assert args.query == "q12" and args.scale == 0.1

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_plan_command(self, capsys):
        assert main(["plan", "q02", "--scale", "0.08"]) == 0
        out = capsys.readouterr().out
        assert "approximable" in out
        # every node is printed with its stable address and fingerprint
        assert "plan fingerprint: " in out
        assert "\n  r " in out and "  r.0" in out

    def test_plan_unknown_query(self, capsys):
        assert main(["plan", "q99", "--scale", "0.08"]) == 2

    def test_plan_execute(self, capsys):
        assert main(["plan", "q15", "--scale", "0.08", "--execute"]) == 0
        assert "machine-hours gain" in capsys.readouterr().out

    def test_trace_command(self, capsys):
        assert main(["trace", "--queries", "2000"]) == 0
        assert "Figure 2b" in capsys.readouterr().out


class TestObservabilityCommands:
    def test_explain_analyze_single_query(self, capsys):
        assert main(["explain-analyze", "q02", "--scale", "0.08"]) == 0
        out = capsys.readouterr().out
        assert "explain analyze: q02" in out
        assert "plan fingerprint" in out
        assert "actual in -> out" in out
        assert "answer:" in out

    def test_explain_analyze_unknown_query(self, capsys):
        assert main(["explain-analyze", "q99", "--scale", "0.08"]) == 2

    def test_explain_analyze_all_queries(self, capsys):
        assert main(["explain-analyze", "--scale", "0.08"]) == 0
        out = capsys.readouterr().out
        for name in ("q01", "q12", "q24"):
            assert f"explain analyze: {name}" in out

    def test_trace_flag_writes_valid_chrome_trace(self, capsys, tmp_path):
        path = tmp_path / "trace.json"
        assert main(
            ["explain-analyze", "q02", "--scale", "0.08", "--trace", str(path)]
        ) == 0
        out = capsys.readouterr().out
        assert f"trace events to {path}" in out
        assert "never closed" not in out

        assert main(["validate-trace", str(path)]) == 0
        assert "schema OK, no unclosed spans" in capsys.readouterr().out

    def test_validate_trace_rejects_bad_file(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('[{"name": "x", "ph": "X", "dur": -1}]')
        assert main(["validate-trace", str(path)]) == 1
        assert "missing" in capsys.readouterr().out

    def test_metrics_flag_writes_registry_snapshot(self, capsys, tmp_path):
        import json

        path = tmp_path / "metrics.json"
        assert main(
            ["explain-analyze", "q02", "--scale", "0.08", "--metrics", str(path)]
        ) == 0
        assert f"metrics registry to {path}" in capsys.readouterr().out
        snapshot = json.loads(path.read_text())
        assert snapshot["timings"]["compile_seconds"] > 0
        assert snapshot["metrics"]["counter"]["executor.queries"][0]["value"] >= 1

    def test_log_level_flag_emits_planner_logs(self, capsys):
        assert main(["plan", "q02", "--scale", "0.08", "--log-level", "debug"]) == 0
        assert "repro." in capsys.readouterr().err
