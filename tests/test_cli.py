"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_plan_args(self):
        args = build_parser().parse_args(["plan", "q12", "--scale", "0.1"])
        assert args.query == "q12" and args.scale == 0.1

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_plan_command(self, capsys):
        assert main(["plan", "q02", "--scale", "0.08"]) == 0
        out = capsys.readouterr().out
        assert "approximable" in out
        # every node is printed with its stable address and fingerprint
        assert "plan fingerprint: " in out
        assert "\n  r " in out and "  r.0" in out

    def test_plan_unknown_query(self, capsys):
        assert main(["plan", "q99", "--scale", "0.08"]) == 2

    def test_plan_execute(self, capsys):
        assert main(["plan", "q15", "--scale", "0.08", "--execute"]) == 0
        assert "machine-hours gain" in capsys.readouterr().out

    def test_trace_command(self, capsys):
        assert main(["trace", "--queries", "2000"]) == 0
        assert "Figure 2b" in capsys.readouterr().out


class TestObservabilityCommands:
    def test_explain_analyze_single_query(self, capsys):
        assert main(["explain-analyze", "q02", "--scale", "0.08"]) == 0
        out = capsys.readouterr().out
        assert "explain analyze: q02" in out
        assert "plan fingerprint" in out
        assert "actual in -> out" in out
        assert "answer:" in out

    def test_explain_analyze_unknown_query(self, capsys):
        assert main(["explain-analyze", "q99", "--scale", "0.08"]) == 2

    def test_explain_analyze_all_queries(self, capsys):
        assert main(["explain-analyze", "--scale", "0.08"]) == 0
        out = capsys.readouterr().out
        for name in ("q01", "q12", "q24"):
            assert f"explain analyze: {name}" in out

    def test_trace_flag_writes_valid_chrome_trace(self, capsys, tmp_path):
        path = tmp_path / "trace.json"
        assert main(
            ["explain-analyze", "q02", "--scale", "0.08", "--trace", str(path)]
        ) == 0
        out = capsys.readouterr().out
        assert f"trace events to {path}" in out
        assert "never closed" not in out

        assert main(["validate-trace", str(path)]) == 0
        assert "schema OK, no unclosed spans" in capsys.readouterr().out

    def test_validate_trace_rejects_bad_file(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('[{"name": "x", "ph": "X", "dur": -1}]')
        assert main(["validate-trace", str(path)]) == 1
        assert "missing" in capsys.readouterr().out

    def test_metrics_flag_writes_registry_snapshot(self, capsys, tmp_path):
        import json

        path = tmp_path / "metrics.json"
        assert main(
            ["explain-analyze", "q02", "--scale", "0.08", "--metrics", str(path)]
        ) == 0
        assert f"metrics registry to {path}" in capsys.readouterr().out
        snapshot = json.loads(path.read_text())
        assert snapshot["timings"]["compile_seconds"] > 0
        assert snapshot["metrics"]["counter"]["executor.queries"][0]["value"] >= 1

    def test_log_level_flag_emits_planner_logs(self, capsys):
        assert main(["plan", "q02", "--scale", "0.08", "--log-level", "debug"]) == 0
        assert "repro." in capsys.readouterr().err


class TestBenchReportCommand:
    def test_enveloped_and_legacy_files(self, capsys, tmp_path):
        import json

        from repro.experiments.report import bench_envelope

        enveloped = tmp_path / "BENCH_prune.json"
        enveloped.write_text(json.dumps(bench_envelope(
            "prune",
            {"selective_skip_fraction": 0.61,
             "machine_hours_credit_total": 1.25},
            scale=0.08,
        )))
        legacy = tmp_path / "BENCH_service.json"
        legacy.write_text(json.dumps({"qps": 42.5, "served": 120}))

        assert main(["bench-report", str(enveloped), str(legacy)]) == 0
        out = capsys.readouterr().out
        assert "prune" in out and "repro-bench/1" in out
        assert "selective skip 61%" in out
        assert "legacy" in out and "qps=42.5" in out

    def test_unreadable_file_fails(self, capsys, tmp_path):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text("{not json")
        assert main(["bench-report", str(bad)]) == 1
        assert "ERROR" in capsys.readouterr().out

    def test_no_files_found(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["bench-report"]) == 1
        assert "no BENCH_*.json artifacts" in capsys.readouterr().out


class TestPostmortemCommand:
    @pytest.fixture()
    def dump_dir(self, tmp_path):
        from repro.obs.flight import FlightRecorder

        recorder = FlightRecorder(dump_dir=str(tmp_path))
        for name in ("q03", "q07"):
            record = recorder.record("s-1", "ads", name, "quickr")
            record.note("admission", "admitted", queue_depth=0)
            recorder.finish(record, "cancelled.deadline")
        return tmp_path

    def test_renders_newest_bundle_by_default(self, capsys, dump_dir):
        assert main(["postmortem", str(dump_dir)]) == 0
        out = capsys.readouterr().out
        assert "rendering newest of 2 bundle(s)" in out
        assert "postmortem: query q07" in out

    def test_list_enumerates_bundles(self, capsys, dump_dir):
        assert main(["postmortem", str(dump_dir), "--list"]) == 0
        out = capsys.readouterr().out
        assert out.count("postmortem-") == 2

    def test_direct_bundle_path(self, capsys, dump_dir):
        import os

        bundle = sorted(
            e for e in os.listdir(dump_dir) if e.startswith("postmortem-")
        )[0]
        assert main(["postmortem", str(dump_dir / bundle)]) == 0
        assert "postmortem: query q03" in capsys.readouterr().out

    def test_missing_path_fails(self, capsys, tmp_path):
        assert main(["postmortem", str(tmp_path / "nope")]) == 1


class TestSloCommand:
    def test_against_live_service(self, capsys, tiny_tpcds):
        import json

        from repro.service import QueryServer, ServiceClient, ServiceConfig
        from repro.service.auditor import AuditorConfig
        from repro.service.server import QueryService

        config = ServiceConfig(
            num_workers=2,
            audit=AuditorConfig(enabled=True, sample_fraction=1.0),
            latency_slo_ms=60_000.0,
        )
        service = QueryService(tiny_tpcds, config)
        server = QueryServer(service, port=0).start()
        try:
            host, port = server.address
            with ServiceClient(host, port, timeout=60.0) as client:
                client.hello(tenant="ads")
                client.query("q02")
            assert service.auditor.wait_drained(timeout=60.0)

            assert main(["slo", "--port", str(port), "--json"]) == 0
            payload = json.loads(capsys.readouterr().out)
            assert payload["auditor"]["completed"] >= 1

            assert main(["slo", "--port", str(port)]) == 0
            out = capsys.readouterr().out
            assert "CI calibration" in out
            assert "latency SLO" in out and "ads" in out
        finally:
            server.stop()

    def test_connection_refused(self, capsys):
        assert main(["slo", "--port", "1"]) == 1
        captured = capsys.readouterr()
        assert "cannot connect" in (captured.out + captured.err).lower()
