"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_plan_args(self):
        args = build_parser().parse_args(["plan", "q12", "--scale", "0.1"])
        assert args.query == "q12" and args.scale == 0.1

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_plan_command(self, capsys):
        assert main(["plan", "q02", "--scale", "0.08"]) == 0
        out = capsys.readouterr().out
        assert "approximable" in out
        # every node is printed with its stable address and fingerprint
        assert "plan fingerprint: " in out
        assert "\n  r " in out and "  r.0" in out

    def test_plan_unknown_query(self, capsys):
        assert main(["plan", "q99", "--scale", "0.08"]) == 2

    def test_plan_execute(self, capsys):
        assert main(["plan", "q15", "--scale", "0.08", "--execute"]) == 0
        assert "machine-hours gain" in capsys.readouterr().out

    def test_trace_command(self, capsys):
        assert main(["trace", "--queries", "2000"]) == 0
        assert "Figure 2b" in capsys.readouterr().out
