"""Tests for the BlinkDB-style apriori sampling baseline (Table 6)."""

import numpy as np
import pytest

from repro.baselines.blinkdb import (
    BlinkDB,
    build_stratified_sample,
    sample_size_for,
    select_samples,
)
from repro.workloads.tpcds import generate_tpcds, queries


@pytest.fixture(scope="module")
def db():
    return generate_tpcds(scale=0.08, seed=6)


class TestStratifiedSamples:
    def test_cap_respected(self, db):
        table = db.table("store_sales")
        sample = build_stratified_sample(table, ["ss_item_sk"], cap_per_stratum=20, seed=1)
        counts = np.bincount(sample.table.column("ss_item_sk"))
        assert counts.max() <= 20

    def test_small_strata_kept_fully(self, db):
        table = db.table("store_sales")
        sample = build_stratified_sample(table, ["ss_item_sk"], cap_per_stratum=10**6, seed=1)
        assert sample.rows == table.num_rows

    def test_weights_recover_counts(self, db):
        table = db.table("store_sales")
        sample = build_stratified_sample(table, ["ss_item_sk"], cap_per_stratum=25, seed=1)
        estimated = float(sample.table.weights().sum())
        assert estimated == pytest.approx(table.num_rows, rel=1e-9)

    def test_weighted_sum_unbiased(self, db):
        table = db.table("store_sales")
        truth = float(table.column("ss_ext_sales_price").sum())
        estimates = []
        for seed in range(20):
            sample = build_stratified_sample(table, ["ss_item_sk"], cap_per_stratum=30, seed=seed)
            estimates.append(
                float((sample.table.weights() * sample.table.column("ss_ext_sales_price")).sum())
            )
        assert np.mean(estimates) == pytest.approx(truth, rel=0.05)

    def test_sample_size_prediction_exact(self, db):
        table = db.table("store_sales")
        predicted = sample_size_for(table, ["ss_item_sk"], 20)
        actual = build_stratified_sample(table, ["ss_item_sk"], 20, seed=2).rows
        assert predicted == actual


class TestSelection:
    def test_budget_respected(self, db):
        table = db.table("store_sales")
        qs = queries(db)
        budget = table.num_rows // 2
        selection = select_samples(table, qs, budget, cap_per_stratum=100)
        assert selection.total_rows <= budget

    def test_bigger_budget_covers_no_fewer(self, db):
        table = db.table("store_sales")
        qs = queries(db)
        small = select_samples(table, qs, table.num_rows // 4, cap_per_stratum=100)
        large = select_samples(table, qs, table.num_rows * 4, cap_per_stratum=100)
        assert len(large.covered_queries) >= len(small.covered_queries)

    def test_zero_budget_chooses_nothing(self, db):
        table = db.table("store_sales")
        selection = select_samples(table, queries(db), 0, cap_per_stratum=100)
        assert selection.chosen == []


class TestEvaluationProtocol:
    def test_report_shape(self, db):
        system = BlinkDB(db, cap_per_stratum=1_000)
        subset = queries(db)[:6]
        report = system.evaluate(subset, budget_multiplier=1.0)
        assert report.total_queries == 6
        assert 0 <= report.coverage <= 6
        assert report.median_gain_all >= 0
        row = report.as_row()
        assert set(row) == {"budget", "coverage", "median_gain_all", "median_gain_covered", "median_error"}

    def test_poor_coverage_on_complex_queries(self, db):
        """The paper's headline: apriori samples help few of these queries."""
        system = BlinkDB(db, cap_per_stratum=1_000)
        report = system.evaluate(queries(db), budget_multiplier=1.0)
        assert report.coverage <= report.total_queries * 0.5
