"""Tests for the streaming (row-at-a-time, partitionable) samplers — the
paper's cluster operating mode — and their agreement with the vectorized
implementations."""

import collections

import numpy as np
import pytest

from repro.engine.table import Table
from repro.errors import SamplerError
from repro.samplers.distinct import DistinctSpec
from repro.samplers.streaming import (
    StreamingDistinct,
    StreamingUniform,
    StreamingUniverse,
    run_partitioned,
    run_streaming,
)
from repro.samplers.universe import UniverseSpec


@pytest.fixture()
def stream_table(rng):
    n = 4_000
    return Table("t", {"k": rng.integers(0, 30, n), "x": rng.exponential(3.0, n)})


class TestStreamingUniform:
    def test_fraction_and_weights(self, stream_table):
        out = run_streaming(StreamingUniform(0.3, np.random.default_rng(1)), stream_table)
        assert out.num_rows / stream_table.num_rows == pytest.approx(0.3, abs=0.05)
        assert np.all(out.weights() == pytest.approx(1 / 0.3))

    def test_unbiased(self, stream_table):
        truth = stream_table.column("x").sum()
        estimates = []
        for seed in range(30):
            out = run_streaming(StreamingUniform(0.2, np.random.default_rng(seed)), stream_table)
            estimates.append(float((out.weights() * out.column("x")).sum()))
        assert np.mean(estimates) == pytest.approx(truth, rel=0.05)

    def test_validation(self):
        with pytest.raises(SamplerError):
            StreamingUniform(0.0)


class TestStreamingUniverse:
    def test_matches_vectorized_exactly(self, stream_table):
        """Both implementations hash the same values with the same seed, so
        they must select the *identical* row set."""
        spec = UniverseSpec(["k"], 0.3, seed=7)
        vectorized = spec.apply(stream_table)
        streaming = run_streaming(StreamingUniverse([0], 0.3, seed=7), stream_table)
        assert sorted(streaming.column("x").tolist()) == sorted(vectorized.column("x").tolist())

    def test_partition_invariance(self, stream_table):
        whole = run_streaming(StreamingUniverse([0], 0.25, seed=3), stream_table)
        parts = run_partitioned(
            lambda _delta: StreamingUniverse([0], 0.25, seed=3), stream_table, 4
        )
        assert sorted(parts.column("x").tolist()) == sorted(whole.column("x").tolist())


class TestStreamingDistinct:
    def test_stratification_guarantee(self, stream_table):
        sampler = StreamingDistinct([0], delta=8, p=0.05, rng=np.random.default_rng(4))
        out = run_streaming(sampler, stream_table)
        kept = collections.Counter(out.column("k").tolist())
        original = collections.Counter(stream_table.column("k").tolist())
        for key, freq in original.items():
            assert kept[key] >= min(8, freq)

    def test_unbiased_sum(self, stream_table):
        truth = stream_table.column("x").sum()
        estimates = []
        for seed in range(30):
            sampler = StreamingDistinct([0], delta=8, p=0.1, rng=np.random.default_rng(seed))
            out = run_streaming(sampler, stream_table)
            estimates.append(float((out.weights() * out.column("x")).sum()))
        assert np.mean(estimates) == pytest.approx(truth, rel=0.08)

    def test_reservoir_weights_for_medium_strata(self, rng):
        """A stratum in (delta, delta + S/p]: end-of-stream flush carries
        weight (freq - delta) / kept."""
        keys = np.full(30, 0)
        t = Table("t", {"k": keys, "x": np.arange(30.0)})
        sampler = StreamingDistinct([0], delta=10, p=0.1, reservoir_size=10, rng=rng)
        out = run_streaming(sampler, t)
        weights = collections.Counter(out.weights().tolist())
        assert weights[1.0] == 10          # frequency-check region
        assert weights[2.0] == 10          # (30-10)/10 = 2 for the reservoir

    def test_bernoulli_regime_weights(self, rng):
        keys = np.zeros(5_000, dtype=int)
        t = Table("t", {"k": keys, "x": np.ones(5_000)})
        sampler = StreamingDistinct([0], delta=10, p=0.1, reservoir_size=10, rng=rng)
        out = run_streaming(sampler, t)
        # After the reservoir flush, rows pass at p with weight 1/p.
        assert (out.weights() == 10.0).sum() > 0
        estimate = float(out.weights().sum())
        assert estimate == pytest.approx(5_000, rel=0.15)

    def test_agreement_with_vectorized_estimates(self, stream_table):
        """Streaming and vectorized distinct samplers agree in expectation."""
        truth = stream_table.column("x").sum()
        streaming_est, vector_est = [], []
        for seed in range(20):
            s_out = run_streaming(
                StreamingDistinct([0], delta=10, p=0.1, rng=np.random.default_rng(seed)),
                stream_table,
            )
            v_out = DistinctSpec(["k"], delta=10, p=0.1, seed=seed).apply(stream_table)
            streaming_est.append(float((s_out.weights() * s_out.column("x")).sum()))
            vector_est.append(float((v_out.weights() * v_out.column("x")).sum()))
        assert np.mean(streaming_est) == pytest.approx(truth, rel=0.1)
        assert np.mean(vector_est) == pytest.approx(truth, rel=0.1)


class TestMemoryBoundedMode:
    def test_sketch_limits_tracked_strata(self, rng):
        """With many distinct light values, the sketch-backed sampler tracks
        far fewer strata than exist."""
        n = 30_000
        keys = np.concatenate(
            [rng.integers(0, 10_000, n // 2), np.zeros(n // 2, dtype=int)]
        )
        rng.shuffle(keys)
        t = Table("t", {"k": keys, "x": np.ones(n)})
        bounded = StreamingDistinct(
            [0], delta=10, p=0.1, rng=rng, memory_bounded=True, tau=1e-3, support=1e-2
        )
        out = run_streaming(bounded, t)
        assert bounded.tracked_strata < 2_000  # far below 10k distinct values
        # The heavy stratum is still thinned.
        zeros_kept = (out.column("k") == 0).sum()
        assert zeros_kept < n // 2 * 0.2
        # Estimate stays unbiased: light rows pass with weight one.
        assert float(out.weights().sum()) == pytest.approx(n, rel=0.1)


class TestPartitionedDistinct:
    def test_delta_adjustment_keeps_guarantee(self, stream_table):
        """Union of D instances with delta' = ceil(delta/D) + eps still
        passes ~delta rows per stratum."""
        delta, instances = 12, 4
        seeds = iter(range(100))

        def make(instance_delta):
            return StreamingDistinct(
                [0], delta=instance_delta, p=0.05, rng=np.random.default_rng(next(seeds))
            )

        out = run_partitioned(make, stream_table, instances, delta=delta)
        kept = collections.Counter(out.column("k").tolist())
        original = collections.Counter(stream_table.column("k").tolist())
        for key, freq in original.items():
            assert kept[key] >= min(delta // 2, freq)

    def test_partition_validation(self, stream_table):
        with pytest.raises(SamplerError):
            run_partitioned(lambda d: StreamingUniform(0.5), stream_table, 0)


class TestWeightedInputRejected:
    def test_pre_weighted_input_rejected(self, stream_table):
        from repro.engine.table import WEIGHT_COLUMN

        weighted = stream_table.with_columns({WEIGHT_COLUMN: np.ones(stream_table.num_rows)})
        with pytest.raises(SamplerError):
            run_streaming(StreamingUniform(0.5), weighted)
