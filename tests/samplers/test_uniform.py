"""Unit tests for the uniform (Bernoulli) sampler."""

import numpy as np
import pytest

from repro.engine.table import Table, rowid_column_name
from repro.errors import SamplerError
from repro.samplers.uniform import UniformSpec


class TestBasics:
    def test_fraction_close_to_p(self, small_table):
        out = UniformSpec(0.3, seed=1).apply(small_table)
        assert out.num_rows / small_table.num_rows == pytest.approx(0.3, abs=0.03)

    def test_weights_are_inverse_p(self, small_table):
        out = UniformSpec(0.25, seed=1).apply(small_table)
        assert np.all(out.weights() == 4.0)

    def test_deterministic_for_seed(self, small_table):
        a = UniformSpec(0.2, seed=9).apply(small_table)
        b = UniformSpec(0.2, seed=9).apply(small_table)
        np.testing.assert_array_equal(a.column("x"), b.column("x"))

    def test_different_seeds_differ(self, small_table):
        a = UniformSpec(0.2, seed=1).apply(small_table)
        b = UniformSpec(0.2, seed=2).apply(small_table)
        assert a.num_rows != b.num_rows or not np.array_equal(a.column("x"), b.column("x"))

    def test_p_validation(self):
        with pytest.raises(SamplerError):
            UniformSpec(0.0)
        with pytest.raises(SamplerError):
            UniformSpec(1.5)

    def test_p_one_keeps_everything(self, small_table):
        out = UniformSpec(1.0, seed=1).apply(small_table)
        assert out.num_rows == small_table.num_rows

    def test_expected_fraction(self):
        assert UniformSpec(0.07).expected_fraction() == 0.07

    def test_key_includes_params(self):
        assert UniformSpec(0.1, seed=1).key() != UniformSpec(0.1, seed=2).key()
        assert UniformSpec(0.1, seed=1).key() != UniformSpec(0.2, seed=1).key()


class TestEstimation:
    def test_sum_estimate_unbiased(self, small_table):
        """Mean of HT estimates over many seeds approaches the true sum."""
        truth = small_table.column("x").sum()
        estimates = []
        for seed in range(40):
            out = UniformSpec(0.1, seed=seed).apply(small_table)
            estimates.append(float((out.weights() * out.column("x")).sum()))
        assert np.mean(estimates) == pytest.approx(truth, rel=0.02)

    def test_count_estimate_unbiased(self, small_table):
        estimates = []
        for seed in range(40):
            out = UniformSpec(0.1, seed=seed).apply(small_table)
            estimates.append(float(out.weights().sum()))
        assert np.mean(estimates) == pytest.approx(small_table.num_rows, rel=0.02)


def with_lineage(table: Table, scan_index: int = 0) -> Table:
    return table.with_columns(
        {rowid_column_name(scan_index): np.arange(table.num_rows, dtype=np.int64)}
    )


class TestCounterBasedDecisions:
    """With lineage, per-row decisions depend only on row identity — the
    property that makes a partition-parallel run bit-identical to serial."""

    def test_partition_invariance(self, small_table):
        spec = UniformSpec(0.2, seed=11)
        whole = spec.apply(with_lineage(small_table))
        rid = rowid_column_name(0)
        pieces = []
        for part in with_lineage(small_table).partition(4):
            pieces.append(spec.apply(part))
        union = Table.concat(pieces).sort_by([rid])
        np.testing.assert_array_equal(whole.column(rid), union.column(rid))
        np.testing.assert_array_equal(whole.column("x"), union.column("x"))

    def test_hash_partition_invariance(self, small_table):
        spec = UniformSpec(0.15, seed=3)
        lineaged = with_lineage(small_table)
        whole = spec.apply(lineaged)
        rid = rowid_column_name(0)
        pieces = [spec.apply(p) for p in lineaged.partition(3, by=["g"])]
        union = Table.concat(pieces).sort_by([rid])
        np.testing.assert_array_equal(whole.column(rid), union.column(rid))

    def test_fraction_still_close_to_p(self, small_table):
        out = UniformSpec(0.3, seed=1).apply(with_lineage(small_table))
        assert out.num_rows / small_table.num_rows == pytest.approx(0.3, abs=0.03)

    def test_seed_still_matters_with_lineage(self, small_table):
        a = UniformSpec(0.2, seed=1).apply(with_lineage(small_table))
        b = UniformSpec(0.2, seed=2).apply(with_lineage(small_table))
        assert not np.array_equal(a.column(rowid_column_name(0)), b.column(rowid_column_name(0)))

    def test_sum_estimate_unbiased_with_lineage(self, small_table):
        truth = small_table.column("x").sum()
        lineaged = with_lineage(small_table)
        estimates = []
        for seed in range(80):
            out = UniformSpec(0.1, seed=seed).apply(lineaged)
            estimates.append(float((out.weights() * out.column("x")).sum()))
        assert np.mean(estimates) == pytest.approx(
            truth, abs=4 * np.std(estimates) / np.sqrt(80)
        )
