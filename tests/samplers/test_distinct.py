"""Unit tests for the distinct (stratified) sampler."""

import collections

import numpy as np
import pytest

from repro.algebra.expressions import Func, col
from repro.engine.table import Table
from repro.errors import SamplerError
from repro.samplers.distinct import DistinctSpec, stratum_codes


@pytest.fixture()
def skewed_table(rng):
    """A table with strata of very different sizes."""
    keys = np.concatenate(
        [
            np.zeros(5, dtype=int),        # tiny stratum: below delta
            np.full(40, 1),                # reservoir regime
            np.full(5_000, 2),             # bernoulli regime
            rng.integers(3, 23, 2_000),    # medium strata
        ]
    )
    rng.shuffle(keys)
    return Table("t", {"k": keys, "x": rng.exponential(5.0, len(keys))})


class TestStratificationGuarantee:
    def test_min_rows_per_stratum(self, skewed_table):
        spec = DistinctSpec(["k"], delta=10, p=0.05, seed=1)
        out = spec.apply(skewed_table)
        kept = collections.Counter(out.column("k").tolist())
        original = collections.Counter(skewed_table.column("k").tolist())
        for key, freq in original.items():
            assert kept[key] >= min(10, freq), f"stratum {key}"

    def test_small_strata_kept_entirely_with_weight_one(self, skewed_table):
        spec = DistinctSpec(["k"], delta=10, p=0.05, seed=1)
        out = spec.apply(skewed_table)
        mask = out.column("k") == 0  # the 5-row stratum
        assert mask.sum() == 5
        assert np.all(out.weights()[mask] == 1.0)

    def test_large_strata_thinned(self, skewed_table):
        spec = DistinctSpec(["k"], delta=10, p=0.05, seed=1)
        out = spec.apply(skewed_table)
        big = (out.column("k") == 2).sum()
        assert big < 5_000 * 0.2  # heavily reduced

    def test_no_strata_missed(self, skewed_table):
        out = DistinctSpec(["k"], delta=3, p=0.01, seed=2).apply(skewed_table)
        assert set(np.unique(out.column("k"))) == set(np.unique(skewed_table.column("k")))


class TestUnbiasedness:
    def test_sum_unbiased_across_seeds(self, skewed_table):
        truth = skewed_table.column("x").sum()
        estimates = []
        for seed in range(40):
            out = DistinctSpec(["k"], delta=10, p=0.1, seed=seed).apply(skewed_table)
            estimates.append(float((out.weights() * out.column("x")).sum()))
        standard_error = np.std(estimates) / np.sqrt(len(estimates))
        assert abs(np.mean(estimates) - truth) < 4 * standard_error + 0.01 * truth

    def test_per_stratum_count_unbiased(self, skewed_table):
        """HT count per stratum should recover the stratum frequency."""
        truth = collections.Counter(skewed_table.column("k").tolist())
        sums = collections.Counter()
        trials = 30
        for seed in range(trials):
            out = DistinctSpec(["k"], delta=10, p=0.1, seed=seed).apply(skewed_table)
            for key, weight in zip(out.column("k").tolist(), out.weights().tolist()):
                sums[key] += weight
        for key in truth:
            assert sums[key] / trials == pytest.approx(truth[key], rel=0.25)


class TestFunctionStrata:
    def test_stratify_on_expression(self, rng):
        """The paper's skewed-SUM example: stratify on ceil(Y/100)."""
        y = np.concatenate([np.ones(1000), np.full(3, 1000.0)])
        rng.shuffle(y)
        t = Table("t", {"y": y})
        bucket = Func("bucket", lambda v: np.ceil(v / 100.0), [col("y")])
        out = DistinctSpec([bucket], delta=2, p=0.05, seed=3).apply(t)
        # All three outlier values must be present.
        assert (out.column("y") == 1000.0).sum() == 3

    def test_column_names_expands_expressions(self):
        bucket = Func("bucket", lambda v: v, [col("y")])
        spec = DistinctSpec(["k", bucket], delta=2, p=0.1)
        assert spec.column_names() == ("k", "y")


class TestValidation:
    def test_needs_columns(self):
        with pytest.raises(SamplerError):
            DistinctSpec([], delta=1, p=0.1)

    def test_positive_delta(self):
        with pytest.raises(SamplerError):
            DistinctSpec(["k"], delta=0, p=0.1)

    def test_probability_bounds(self):
        with pytest.raises(SamplerError):
            DistinctSpec(["k"], delta=1, p=2.0)

    def test_empty_table(self):
        t = Table("t", {"k": np.array([], dtype=int)})
        out = DistinctSpec(["k"], delta=1, p=0.5).apply(t)
        assert out.num_rows == 0


class TestStratumCodes:
    def test_codes_group_equal_rows(self):
        t = Table("t", {"a": np.array([1, 2, 1]), "b": np.array([9, 9, 9])})
        codes = stratum_codes(t, ["a", "b"])
        assert codes[0] == codes[2]
        assert codes[0] != codes[1]
