"""Unit tests for the keyed 64-bit hashing behind the universe sampler."""

import numpy as np
import pytest

from repro.samplers.hashing import hash_columns, mix64, universe_fraction


class TestMix64:
    def test_deterministic(self):
        values = np.arange(100, dtype=np.uint64)
        np.testing.assert_array_equal(mix64(values, 7), mix64(values, 7))

    def test_seed_changes_output(self):
        values = np.arange(100, dtype=np.uint64)
        assert not np.array_equal(mix64(values, 1), mix64(values, 2))

    def test_avalanche(self):
        """Adjacent inputs map to wildly different outputs."""
        out = mix64(np.array([1, 2], dtype=np.uint64), 0)
        diff_bits = bin(int(out[0]) ^ int(out[1])).count("1")
        assert diff_bits > 16


class TestHashColumns:
    def test_multi_column_order_sensitive(self, rng):
        a = rng.integers(0, 100, 500)
        b = rng.integers(0, 100, 500)
        assert not np.array_equal(hash_columns([a, b], 0), hash_columns([b, a], 0))

    def test_value_identity_across_names(self, rng):
        """Hashing depends on values only — the key property that lets
        paired universe samplers use differently-named join columns."""
        values = rng.integers(0, 1000, 300)
        np.testing.assert_array_equal(hash_columns([values], 5), hash_columns([values.copy()], 5))

    def test_float_columns(self):
        values = np.array([1.5, 2.5, 1.5])
        out = hash_columns([values], 0)
        assert out[0] == out[2] and out[0] != out[1]

    def test_string_columns_stable(self):
        values = np.array(["x", "y", "x"])
        out = hash_columns([values], 0)
        assert out[0] == out[2] and out[0] != out[1]

    def test_requires_columns(self):
        with pytest.raises(ValueError):
            hash_columns([], 0)


class TestUniverseFraction:
    def test_range(self, rng):
        points = universe_fraction([rng.integers(0, 10_000, 5_000)], 3)
        assert points.min() >= 0.0 and points.max() < 1.0

    def test_approximately_uniform(self, rng):
        points = universe_fraction([np.arange(20_000)], 9)
        histogram, _ = np.histogram(points, bins=10, range=(0, 1))
        assert histogram.min() > 1_500 and histogram.max() < 2_500
