"""Unit tests for the universe sampler — including the paper's core claim:
joining p-universe samples of both inputs IS a p-universe sample of the
join output (exactly, not just statistically, since the subspace is shared).
"""

import numpy as np
import pytest

from repro.engine import operators
from repro.engine.table import Table
from repro.errors import SamplerError
from repro.samplers.universe import UniverseSpec


@pytest.fixture()
def pair(rng):
    n1, n2 = 8_000, 2_000
    left = Table("l", {"k": rng.integers(0, 400, n1), "v": rng.normal(size=n1)})
    right = Table("r", {"j": rng.integers(0, 400, n2), "w": rng.normal(size=n2)})
    return left, right


class TestSubspaceSelection:
    def test_fraction_close_to_p(self, small_table):
        out = UniverseSpec(["k"], 0.25, seed=3).apply(small_table)
        # Fraction of *key values* kept is ~p; row fraction follows since
        # rows are spread evenly over keys.
        kept_keys = len(np.unique(out.column("k")))
        assert kept_keys / 50 == pytest.approx(0.25, abs=0.15)

    def test_all_rows_of_a_kept_key_pass(self, small_table):
        out = UniverseSpec(["k"], 0.3, seed=3).apply(small_table)
        kept = set(np.unique(out.column("k")).tolist())
        for key in kept:
            total = int((small_table.column("k") == key).sum())
            sampled = int((out.column("k") == key).sum())
            assert sampled == total

    def test_deterministic(self, small_table):
        a = UniverseSpec(["k"], 0.2, seed=5).apply(small_table)
        b = UniverseSpec(["k"], 0.2, seed=5).apply(small_table)
        np.testing.assert_array_equal(a.column("x"), b.column("x"))

    def test_decision_depends_only_on_key(self, small_table):
        """Partitionability: decisions are identical across partitions."""
        spec = UniverseSpec(["k"], 0.3, seed=1)
        whole = spec.apply(small_table)
        parts = [spec.apply(p) for p in small_table.partition(4)]
        merged = sorted(np.concatenate([p.column("x") for p in parts]).tolist())
        assert merged == sorted(whole.column("x").tolist())

    def test_validation(self):
        with pytest.raises(SamplerError):
            UniverseSpec([], 0.5)
        with pytest.raises(SamplerError):
            UniverseSpec(["k"], 0.0)


class TestJoinEquivalence:
    """sample-then-join == join-then-sample, row for row."""

    def test_exact_equivalence(self, pair):
        left, right = pair
        p, seed = 0.2, 11
        sample_left = UniverseSpec(["k"], p, seed=seed).apply(left)
        sample_right = UniverseSpec(["j"], p, seed=seed, emit_weight=False).apply(right)
        joined_samples = operators.execute_join(sample_left, sample_right, ["k"], ["j"])

        full_join = operators.execute_join(left, right, ["k"], ["j"])
        sampled_join = UniverseSpec(["k"], p, seed=seed).apply(full_join)

        assert joined_samples.num_rows == sampled_join.num_rows
        np.testing.assert_allclose(
            np.sort(joined_samples.column("v")), np.sort(sampled_join.column("v"))
        )

    def test_pair_weight_is_one_over_p(self, pair):
        left, right = pair
        sample_left = UniverseSpec(["k"], 0.25, seed=2).apply(left)
        sample_right = UniverseSpec(["j"], 0.25, seed=2, emit_weight=False).apply(right)
        joined = operators.execute_join(sample_left, sample_right, ["k"], ["j"])
        assert np.all(joined.weights() == pytest.approx(4.0))

    def test_same_subspace_predicate(self):
        a = UniverseSpec(["k"], 0.2, seed=1)
        b = UniverseSpec(["j"], 0.2, seed=1)
        c = UniverseSpec(["j"], 0.3, seed=1)
        d = UniverseSpec(["j"], 0.2, seed=2)
        assert a.same_subspace_as(b)  # names differ, values decide
        assert not a.same_subspace_as(c)
        assert not a.same_subspace_as(d)

    def test_join_sum_estimate_unbiased(self, pair):
        left, right = pair
        truth = operators.execute_join(left, right, ["k"], ["j"]).column("v").sum()
        estimates = []
        for seed in range(60):
            sl = UniverseSpec(["k"], 0.2, seed=seed).apply(left)
            sr = UniverseSpec(["j"], 0.2, seed=seed, emit_weight=False).apply(right)
            joined = operators.execute_join(sl, sr, ["k"], ["j"])
            estimates.append(float((joined.weights() * joined.column("v")).sum()))
        assert np.mean(estimates) == pytest.approx(truth, abs=4 * np.std(estimates) / np.sqrt(60))


class TestCountDistinctRescale:
    def test_distinct_count_scales_by_inverse_p(self, small_table):
        """The paper's insight: distinct keys in the subspace, divided by p,
        estimates the total distinct keys."""
        truth = len(np.unique(small_table.column("k")))
        estimates = []
        for seed in range(80):
            out = UniverseSpec(["k"], 0.3, seed=seed).apply(small_table)
            estimates.append(len(np.unique(out.column("k"))) / 0.3)
        assert np.mean(estimates) == pytest.approx(truth, rel=0.1)


class TestPartitionParallel:
    def test_for_partition_is_identity(self):
        """Universe decisions are value-based, hence partition-invariant."""
        spec = UniverseSpec(["k"], 0.2, seed=1)
        assert spec.for_partition(2, 4, aligned=False) is spec

    def test_hash_subspace_agreement_across_copartitions(self, pair):
        """Co-partitioned inputs sampled per-partition agree on one global
        key subspace: the union of per-partition sampled joins equals the
        sampled join of the whole inputs."""
        left, right = pair
        spec_l = UniverseSpec(["k"], 0.2, seed=9)
        spec_r = UniverseSpec(["j"], 0.2, seed=9, emit_weight=False)
        whole = operators.execute_join(spec_l.apply(left), spec_r.apply(right), ["k"], ["j"])

        lparts = left.partition(4, by=["k"], seed=123)
        rparts = right.partition(4, by=["j"], seed=123)
        pieces = [
            operators.execute_join(spec_l.apply(lp), spec_r.apply(rp), ["k"], ["j"])
            for lp, rp in zip(lparts, rparts)
        ]
        union = Table.concat(pieces)
        assert union.num_rows == whole.num_rows
        np.testing.assert_allclose(np.sort(union.column("v")), np.sort(whole.column("v")))
        np.testing.assert_allclose(union.weights().sum(), whole.weights().sum())


class TestStringKeys:
    def test_string_columns_supported(self):
        values = np.array(["alpha", "beta", "gamma", "delta"] * 100)
        t = Table("t", {"s": values, "x": np.arange(400)})
        out = UniverseSpec(["s"], 0.5, seed=4).apply(t)
        kept = set(np.unique(out.column("s")).tolist())
        # Whole key classes pass or not.
        for key in kept:
            assert (out.column("s") == key).sum() == 100

    def test_multi_column_keys(self, rng):
        t = Table("t", {"a": rng.integers(0, 20, 1000), "b": rng.integers(0, 20, 1000)})
        out = UniverseSpec(["a", "b"], 0.3, seed=6).apply(t)
        assert 0 < out.num_rows < 1000
