"""Unit tests for bounded reservoir sampling."""

import collections

import numpy as np
import pytest

from repro.errors import SamplerError
from repro.sketches.reservoir import Reservoir


class TestBasics:
    def test_keeps_everything_below_capacity(self, rng):
        r = Reservoir(10, rng)
        for i in range(7):
            r.offer(i)
        assert sorted(r.peek()) == list(range(7))

    def test_never_exceeds_capacity(self, rng):
        r = Reservoir(5, rng)
        for i in range(1_000):
            r.offer(i)
        assert len(r) == 5
        assert r.items_seen == 1_000

    def test_drain_clears(self, rng):
        r = Reservoir(3, rng)
        for i in range(10):
            r.offer(i)
        items = r.drain()
        assert len(items) == 3
        assert len(r) == 0 and r.items_seen == 0

    def test_capacity_validation(self):
        with pytest.raises(SamplerError):
            Reservoir(0)


class TestUniformity:
    def test_inclusion_probability_uniform(self):
        """Each of n items should land in the reservoir ~ k/n of the time."""
        n, k, trials = 50, 10, 2_000
        counts = collections.Counter()
        master = np.random.default_rng(0)
        for _ in range(trials):
            r = Reservoir(k, np.random.default_rng(master.integers(1 << 30)))
            for i in range(n):
                r.offer(i)
            counts.update(r.peek())
        expected = trials * k / n
        for i in range(n):
            assert counts[i] == pytest.approx(expected, rel=0.25)
