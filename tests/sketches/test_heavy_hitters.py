"""Unit tests for the Manku-Motwani lossy counting sketch."""

import numpy as np
import pytest

from repro.errors import SamplerError
from repro.sketches.heavy_hitters import LossyCounter


class TestGuarantees:
    def test_all_true_heavies_reported(self, rng):
        """Every value with true frequency >= support * N must be reported."""
        n = 50_000
        stream = np.concatenate(
            [
                np.full(int(n * 0.1), 0),
                np.full(int(n * 0.05), 1),
                rng.integers(2, 5_000, int(n * 0.85)),
            ]
        )
        rng.shuffle(stream)
        sketch = LossyCounter(tau=1e-3, support=2e-2)
        sketch.add_many(stream.tolist())
        heavy = {value for value, _count in sketch.heavy_hitters()}
        assert 0 in heavy and 1 in heavy

    def test_frequency_error_bounded(self, rng):
        n = 30_000
        stream = np.concatenate([np.full(3_000, 42), rng.integers(0, 40, n - 3_000)])
        rng.shuffle(stream)
        sketch = LossyCounter(tau=1e-3, support=1e-2)
        sketch.add_many(stream.tolist())
        estimate = sketch.estimate(42)
        assert 3_000 - sketch.tau * n <= estimate <= 3_000

    def test_upper_bound_never_below_truth(self, rng):
        stream = rng.integers(0, 100, 20_000)
        sketch = LossyCounter(tau=1e-3, support=1e-2)
        sketch.add_many(stream.tolist())
        truth = np.bincount(stream)
        for value in range(100):
            assert sketch.estimate_upper(int(value)) >= truth[value] - sketch.tau * len(stream)

    def test_memory_stays_small(self, rng):
        """Uniform stream over many values: entries stay near 1/tau."""
        sketch = LossyCounter(tau=1e-3, support=1e-2)
        sketch.add_many(rng.integers(0, 1_000_000, 50_000).tolist())
        assert sketch.num_entries < 5_000


class TestMechanics:
    def test_bulk_add(self):
        sketch = LossyCounter(tau=0.01, support=0.1)
        sketch.add("x", count=500)
        assert sketch.estimate("x") == 500
        assert sketch.items_seen == 500

    def test_is_heavy(self, rng):
        sketch = LossyCounter(tau=0.01, support=0.05)
        stream = np.concatenate([np.zeros(500, dtype=int), rng.integers(1, 500, 4_500)])
        rng.shuffle(stream)
        sketch.add_many(stream.tolist())
        assert sketch.is_heavy(0)

    def test_merge_preserves_heavies(self, rng):
        stream = np.concatenate([np.zeros(2_000, dtype=int), rng.integers(1, 2_000, 18_000)])
        rng.shuffle(stream)
        a, b = LossyCounter(tau=1e-3, support=5e-2), LossyCounter(tau=1e-3, support=5e-2)
        a.add_many(stream[:10_000].tolist())
        b.add_many(stream[10_000:].tolist())
        merged = a.merge(b)
        assert merged.items_seen == 20_000
        assert 0 in {v for v, _ in merged.heavy_hitters()}

    def test_merge_parameter_mismatch(self):
        with pytest.raises(SamplerError):
            LossyCounter(tau=1e-3, support=1e-2).merge(LossyCounter(tau=1e-2, support=1e-1))


class TestValidation:
    def test_tau_bounds(self):
        with pytest.raises(SamplerError):
            LossyCounter(tau=0.0, support=0.1)

    def test_support_at_least_tau(self):
        with pytest.raises(SamplerError):
            LossyCounter(tau=0.1, support=0.01)
