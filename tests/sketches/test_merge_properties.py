"""Property tests for sketch mergeability.

The partition catalog builds one sketch per partition and rolls them up to
table level, so merged sketches must agree with a sketch built over the
whole stream: KMV merge is *exactly* the whole-stream sketch (the union's
k smallest hashes are the same set either way), and lossy-counting merge
must keep its lower/upper bounds valid — including for values tracked by
only one input, which inherit the other input's eviction slack.
"""

import json

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketches.distinct_count import KMVCounter
from repro.sketches.heavy_hitters import LossyCounter

values_arrays = st.lists(st.integers(min_value=-1_000, max_value=1_000), max_size=300)


@st.composite
def split_stream(draw):
    stream = draw(st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=400))
    cut = draw(st.integers(min_value=0, max_value=len(stream)))
    return stream, cut


class TestKMVMerge:
    @given(values=values_arrays, cut=st.integers(min_value=0, max_value=300))
    @settings(max_examples=50, deadline=None)
    def test_merged_equals_whole_stream_sketch(self, values, cut):
        cut = min(cut, len(values))
        whole = KMVCounter(k=64)
        whole.add_array(np.asarray(values, dtype=np.int64))
        a = KMVCounter(k=64)
        a.add_array(np.asarray(values[:cut], dtype=np.int64))
        b = KMVCounter(k=64)
        b.add_array(np.asarray(values[cut:], dtype=np.int64))
        merged = a.merge(b)
        assert merged._hashes == whole._hashes
        assert merged.estimate() == whole.estimate()

    @given(values=values_arrays)
    @settings(max_examples=50, deadline=None)
    def test_add_array_matches_scalar_add(self, values):
        scalar = KMVCounter(k=32)
        for v in values:
            scalar.add(np.int64(v))
        bulk = KMVCounter(k=32)
        bulk.add_array(np.asarray(values, dtype=np.int64))
        assert bulk._hashes == scalar._hashes

    def test_string_hashing_is_stable(self):
        # PYTHONHASHSEED-independent: pinned against a fresh sketch, and the
        # hashes survive a JSON round trip (catalog persistence).
        sketch = KMVCounter(k=16)
        sketch.add_array(np.array(["alpha", "beta", "alpha"]))
        again = KMVCounter(k=16)
        again.add("alpha")
        again.add("beta")
        assert sketch._hashes == again._hashes
        restored = KMVCounter.from_dict(json.loads(json.dumps(sketch.to_dict())))
        assert restored._hashes == sketch._hashes
        assert restored.estimate() == sketch.estimate()


class TestLossyMerge:
    @given(parts=split_stream())
    @settings(max_examples=50, deadline=None)
    def test_merged_bounds_bracket_truth(self, parts):
        stream, cut = parts
        a = LossyCounter(tau=0.05, support=0.1)
        a.add_many(stream[:cut])
        b = LossyCounter(tau=0.05, support=0.1)
        b.add_many(stream[cut:])
        merged = a.merge(b)
        assert merged.items_seen == len(stream)
        truth = {}
        for v in stream:
            truth[v] = truth.get(v, 0) + 1
        for v, count in truth.items():
            assert merged.estimate(v) <= count
            assert merged.estimate_upper(v) >= count

    @given(parts=split_stream())
    @settings(max_examples=50, deadline=None)
    def test_merged_reports_every_whole_stream_heavy(self, parts):
        stream, cut = parts
        whole_truth = {}
        for v in stream:
            whole_truth[v] = whole_truth.get(v, 0) + 1
        a = LossyCounter(tau=0.05, support=0.2)
        a.add_many(stream[:cut])
        b = LossyCounter(tau=0.05, support=0.2)
        b.add_many(stream[cut:])
        merged = a.merge(b)
        reported = {v for v, _ in merged.heavy_hitters()}
        for v, count in whole_truth.items():
            if count >= 0.2 * len(stream):
                assert v in reported

    def test_one_sided_entry_inherits_other_slack(self):
        # Regression: 42 is tracked only by `a`, but occurred in `b`'s
        # stream and was evicted there. The merged upper bound must still
        # cover the combined true count, which requires adding b's
        # eviction slack to the one-sided entry.
        a = LossyCounter(tau=0.25, support=0.5)
        a.add(42, count=3)
        b = LossyCounter(tau=0.25, support=0.5)
        b.add(42)  # one early occurrence ...
        for v in range(100, 112):
            b.add(v)  # ... evicted by compression before the merge
        assert b.estimate(42) == 0, "precondition: 42 evicted from b"
        merged = a.merge(b)
        assert merged.estimate_upper(42) >= 4

    def test_from_exact_counts_matches_streaming_bounds(self, rng):
        stream = np.concatenate([np.zeros(500, dtype=int), rng.integers(1, 50, 4_500)])
        rng.shuffle(stream)
        uniques, counts = np.unique(stream, return_counts=True)
        bulk = LossyCounter.from_exact_counts(uniques, counts, tau=1e-3, support=5e-2)
        assert bulk.items_seen == len(stream)
        truth = np.bincount(stream)
        for v in range(50):
            assert bulk.estimate(int(v)) <= truth[v]
            assert bulk.estimate_upper(int(v)) >= truth[v] - bulk.tau * len(stream)
        assert 0 in {v for v, _ in bulk.heavy_hitters()}

    def test_json_round_trip(self):
        sketch = LossyCounter(tau=0.01, support=0.1)
        sketch.add_many([1, 1, 2, 3, 3, 3])
        restored = LossyCounter.from_dict(json.loads(json.dumps(sketch.to_dict())))
        assert restored.items_seen == sketch.items_seen
        assert restored._entries == sketch._entries
        assert restored.heavy_hitters() == sketch.heavy_hitters()
