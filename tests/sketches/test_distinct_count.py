"""Unit tests for distinct-count estimation."""

import numpy as np
import pytest

from repro.sketches.distinct_count import KMVCounter, exact_distinct, exact_distinct_multi


class TestExact:
    def test_single_column(self):
        assert exact_distinct(np.array([1, 1, 2, 3, 3, 3])) == 3

    def test_empty(self):
        assert exact_distinct(np.array([])) == 0

    def test_multi_column(self):
        a = np.array([1, 1, 2, 2])
        b = np.array([1, 1, 1, 2])
        assert exact_distinct_multi([a, b]) == 3

    def test_multi_empty(self):
        assert exact_distinct_multi([]) == 0
        assert exact_distinct_multi([np.array([])]) == 0


class TestKMV:
    def test_small_cardinality_exact(self):
        counter = KMVCounter(k=256)
        counter.add_many(range(100))
        assert counter.estimate() == 100

    def test_large_cardinality_approximate(self, rng):
        counter = KMVCounter(k=512)
        values = rng.integers(0, 200_000, 60_000)
        counter.add_many(values.tolist())
        truth = len(np.unique(values))
        assert counter.estimate() == pytest.approx(truth, rel=0.15)

    def test_duplicates_ignored(self):
        counter = KMVCounter(k=64)
        for _ in range(10):
            counter.add_many(range(50))
        assert counter.estimate() == 50

    def test_merge(self, rng):
        a, b = KMVCounter(k=256), KMVCounter(k=256)
        a.add_many(range(0, 3_000))
        b.add_many(range(2_000, 5_000))
        merged = a.merge(b)
        assert merged.estimate() == pytest.approx(5_000, rel=0.2)

    def test_merge_mismatch(self):
        with pytest.raises(ValueError):
            KMVCounter(k=64).merge(KMVCounter(k=128))
