"""The benchmark harness honors REPRO_BENCH_SCALE / REPRO_BENCH_SEED."""

import importlib.util
import pathlib

BENCH_CONFTEST = pathlib.Path(__file__).resolve().parent.parent / "benchmarks" / "conftest.py"


def load_bench_conftest():
    spec = importlib.util.spec_from_file_location("bench_conftest", BENCH_CONFTEST)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_defaults_match_docstring(monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
    monkeypatch.delenv("REPRO_BENCH_SEED", raising=False)
    module = load_bench_conftest()
    assert module.bench_scale() == module.DEFAULT_BENCH_SCALE == 0.3
    assert module.bench_seed() == module.DEFAULT_BENCH_SEED == 1
    assert f"default {module.DEFAULT_BENCH_SCALE}" in module.__doc__


def test_env_override_honored_after_import(monkeypatch):
    # The override must win even when set after the module was imported.
    monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
    module = load_bench_conftest()
    monkeypatch.setenv("REPRO_BENCH_SCALE", "0.05")
    monkeypatch.setenv("REPRO_BENCH_SEED", "7")
    assert module.bench_scale() == 0.05
    assert module.bench_seed() == 7
