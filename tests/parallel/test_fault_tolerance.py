"""End-to-end fault tolerance: injected crashes, stragglers and corruption
across every pool backend, plus sample-aware graceful degradation.

The invariants under test mirror the system's claims:

* a crashed/corrupted attempt is retried and the recovered run is
  *bit-identical* to the fault-free run (counter-based sampling makes
  re-execution deterministic);
* a permanently lost partition degrades uniform/universe-sampled queries to
  a re-weighted :class:`PartialResult` instead of failing;
* plans that cannot degrade (distinct-sampled, exact) fall back to one
  serial re-execution, and only a failing fallback raises
  :class:`DegradedResultError`.
"""

import numpy as np
import pytest

from repro.algebra.aggregates import count, sum_
from repro.algebra.builder import from_node, scan
from repro.algebra.expressions import col
from repro.algebra.logical import SamplerNode
from repro.engine.executor import Executor, PartialResult
from repro.errors import DegradedResultError
from repro.parallel import Fault, FaultPlan, ParallelOptions
from repro.parallel.tasks import RetryPolicy
from repro.samplers.distinct import DistinctSpec
from repro.samplers.uniform import UniformSpec
from repro.samplers.universe import UniverseSpec

DEGREE = 4
POOLS = ("inline", "thread", "process")

#: Fast backoff so retry-heavy tests stay quick.
FAST = RetryPolicy(backoff_base=0.005, backoff_max=0.05, poll_interval=0.005)


def sampled(builder, spec):
    return from_node(SamplerNode(builder.node, spec))


def faulted_executor(db, fault_plan, pool="inline", retry=FAST, allow_degraded=True):
    return Executor(
        db,
        parallelism=DEGREE,
        parallel_options=ParallelOptions(
            pool=pool,
            min_partition_rows=1_000,
            # Oversubscribe so 1-core CI still exercises the concurrent
            # scheduler instead of the single-worker inline short-circuit.
            max_workers=DEGREE + 1,
            retry=retry,
            fault_plan=fault_plan,
            allow_degraded=allow_degraded,
        ),
    )


def assert_bit_identical(expected, actual):
    e, a = expected.table, actual.table
    assert e.column_names == a.column_names
    assert e.num_rows == a.num_rows
    for c in e.column_names:
        np.testing.assert_array_equal(e.column(c), a.column(c), err_msg=c)


@pytest.fixture(scope="module")
def uniform_query(sales_db):
    return (
        sampled(scan(sales_db, "sales"), UniformSpec(0.1, seed=42))
        .groupby("s_item")
        .agg(sum_(col("s_amount"), "total"), count("n"))
        .orderby("s_item")
        .build("uniform_ft")
    )


@pytest.fixture(scope="module")
def universe_query(sales_db):
    return (
        sampled(scan(sales_db, "sales"), UniverseSpec(("s_cust",), 0.25, seed=7))
        .groupby("s_day")
        .agg(sum_(col("s_amount"), "total"))
        .orderby("s_day")
        .build("universe_ft")
    )


@pytest.fixture(scope="module")
def distinct_query(sales_db):
    return (
        sampled(scan(sales_db, "sales"), DistinctSpec(("s_item",), delta=8, p=0.2, seed=5))
        .groupby("s_item")
        .agg(sum_(col("s_amount"), "total"))
        .orderby("s_item")
        .build("distinct_ft")
    )


class TestRecoveryIsBitIdentical:
    """Crashed/corrupt attempts are retried; the answer never changes."""

    @pytest.mark.parametrize("pool", POOLS)
    def test_uniform_crash_recovers(self, sales_db, uniform_query, pool):
        serial = Executor(sales_db).execute(uniform_query)
        plan = FaultPlan([Fault(0, 0, "crash"), Fault(2, 0, "crash")])
        result = faulted_executor(sales_db, plan, pool=pool).execute(uniform_query)
        assert result.parallel.strategy == "round-robin[sales]"
        assert result.parallel.task_retries >= 2
        assert result.parallel.faults_injected == 2
        assert not result.degraded
        assert_bit_identical(serial, result)

    @pytest.mark.parametrize("pool", POOLS)
    def test_corrupt_result_is_rejected_and_retried(self, sales_db, uniform_query, pool):
        serial = Executor(sales_db).execute(uniform_query)
        plan = FaultPlan([Fault(1, 0, "corrupt")])
        result = faulted_executor(sales_db, plan, pool=pool).execute(uniform_query)
        assert result.parallel.task_retries >= 1
        assert_bit_identical(serial, result)
        errors = [e for e in result.parallel.failed_partitions]
        assert errors == []  # recovered, not lost

    @pytest.mark.parametrize("pool", POOLS)
    def test_pickle_bomb_is_survived(self, sales_db, uniform_query, pool):
        serial = Executor(sales_db).execute(uniform_query)
        plan = FaultPlan([Fault(3, 0, "pickle")])
        result = faulted_executor(sales_db, plan, pool=pool).execute(uniform_query)
        assert result.parallel.task_retries >= 1
        assert_bit_identical(serial, result)

    def test_corrupt_lineage_column_is_rejected_and_retried(self, sales_db):
        # An exact plan ships no weight column, so corrupt_table damages the
        # payload by dropping its last column — a lineage column. Validation
        # must catch the missing lineage (not just the logical output
        # columns), or the damaged table would crash merge_rows downstream.
        query = (
            scan(sales_db, "sales")
            .groupby("s_item")
            .agg(sum_(col("s_amount"), "total"))
            .orderby("s_item")
            .build("exact_ft")
        )
        serial = Executor(sales_db).execute(query)
        plan = FaultPlan([Fault(1, 0, "corrupt")])
        result = faulted_executor(sales_db, plan).execute(query)
        assert result.parallel.strategy == "round-robin[sales]"
        assert result.parallel.task_retries >= 1
        assert_bit_identical(serial, result)

    def test_universe_crash_recovers(self, sales_db, universe_query):
        serial = Executor(sales_db).execute(universe_query)
        plan = FaultPlan([Fault(2, 0, "crash")])
        result = faulted_executor(sales_db, plan, pool="thread").execute(universe_query)
        assert result.parallel.task_retries >= 1
        assert_bit_identical(serial, result)

    def test_hang_straggles_but_answer_is_unchanged(self, sales_db, uniform_query):
        serial = Executor(sales_db).execute(uniform_query)
        plan = FaultPlan([Fault(1, 0, "hang", seconds=0.6)])
        retry = RetryPolicy(
            backoff_base=0.005, speculation_min_seconds=0.1, poll_interval=0.005
        )
        result = faulted_executor(sales_db, plan, pool="thread", retry=retry).execute(
            uniform_query
        )
        assert result.parallel.speculative_launches >= 1
        assert result.parallel.speculative_wins >= 1
        assert_bit_identical(serial, result)

    def test_seeded_chaos_runs_are_reproducible(self, sales_db, uniform_query):
        plan = FaultPlan.random(seed=11, num_partitions=DEGREE, crashes=1, hangs=0)
        first = faulted_executor(sales_db, plan, pool="inline").execute(uniform_query)
        second = faulted_executor(sales_db, plan, pool="inline").execute(uniform_query)
        assert_bit_identical(first, second)
        assert first.parallel.task_retries == second.parallel.task_retries


class TestGracefulDegradation:
    def test_lost_partition_yields_partial_result(self, sales_db, uniform_query):
        result = faulted_executor(
            sales_db, FaultPlan.lose_partition(1), retry=RetryPolicy(max_attempts=2, backoff_base=0.005)
        ).execute(uniform_query)
        assert isinstance(result, PartialResult)
        assert result.degraded
        assert result.lost_partitions == (1,)
        assert result.coverage == pytest.approx((DEGREE - 1) / DEGREE)
        assert result.reweight_factor == pytest.approx(DEGREE / (DEGREE - 1))
        assert result.parallel.degraded
        assert result.parallel.coverage == pytest.approx(0.75)

    def test_reweighted_estimate_stays_close_to_truth(self, sales_db, uniform_query):
        truth = sales_db.table("sales").column("s_amount").sum()
        result = faulted_executor(
            sales_db, FaultPlan.lose_partition(2), retry=RetryPolicy(max_attempts=2, backoff_base=0.005)
        ).execute(uniform_query)
        estimate = result.table.column("total").sum()
        # A 10% uniform sample at 75% coverage, re-weighted: the total is
        # still an unbiased estimate of the full-data sum.
        assert abs(estimate - truth) / truth < 0.1

    def test_degraded_counts_are_reweighted(self, sales_db, uniform_query):
        clean = faulted_executor(sales_db, None).execute(uniform_query)
        lost = faulted_executor(
            sales_db, FaultPlan.lose_partition(0), retry=RetryPolicy(max_attempts=2, backoff_base=0.005)
        ).execute(uniform_query)
        # Estimated row counts are weight sums; the re-weighted survivors
        # should land near the fault-free estimate, not 25% below it.
        assert lost.table.column("n").sum() == pytest.approx(
            clean.table.column("n").sum(), rel=0.1
        )

    def test_distinct_sampled_plan_reexecutes_serially(self, sales_db, distinct_query):
        serial = Executor(sales_db).execute(distinct_query)
        result = faulted_executor(
            sales_db, FaultPlan.lose_partition(1), retry=RetryPolicy(max_attempts=2, backoff_base=0.005)
        ).execute(distinct_query)
        assert not result.degraded
        assert result.parallel.strategy == "serial-fallback"
        assert "stratum" in result.parallel.reason or "lost" in result.parallel.reason
        assert_bit_identical(serial, result)

    def test_degradation_can_be_disabled(self, sales_db, uniform_query):
        serial = Executor(sales_db).execute(uniform_query)
        result = faulted_executor(
            sales_db,
            FaultPlan.lose_partition(1),
            retry=RetryPolicy(max_attempts=2, backoff_base=0.005),
            allow_degraded=False,
        ).execute(uniform_query)
        assert not result.degraded
        assert result.parallel.strategy == "serial-fallback"
        assert_bit_identical(serial, result)

    def test_partial_merge_mode_reexecutes_serially(self, sales_db, uniform_query):
        executor = Executor(
            sales_db,
            parallelism=DEGREE,
            parallel_options=ParallelOptions(
                pool="inline",
                merge="partial",
                min_partition_rows=1_000,
                retry=RetryPolicy(max_attempts=2, backoff_base=0.005),
                fault_plan=FaultPlan.lose_partition(3),
            ),
        )
        result = executor.execute(uniform_query)
        assert not result.degraded
        assert result.parallel.strategy == "serial-fallback"

    def test_all_partitions_lost_raises(self, sales_db, uniform_query):
        plan = FaultPlan((), lost_partitions=range(DEGREE))
        with pytest.raises(DegradedResultError):
            faulted_executor(
                sales_db, plan, retry=RetryPolicy(max_attempts=2, backoff_base=0.005)
            ).execute(uniform_query)


class TestMetricsAndStats:
    def test_fault_ledger_accumulates(self, sales_db, uniform_query):
        executor = faulted_executor(sales_db, FaultPlan([Fault(0, 0, "crash")]))
        executor.execute(uniform_query)
        executor.execute(uniform_query)
        ledger = executor.timings()["fault_tolerance"]
        assert ledger["queries"] == 2
        assert ledger["tasks"] == 2 * DEGREE
        assert ledger["retries"] >= 2
        assert ledger["faults_injected"] == 2
        assert "task_latency_s" in ledger

    def test_latency_percentiles_present(self, sales_db, uniform_query):
        result = faulted_executor(sales_db, None).execute(uniform_query)
        pct = result.parallel.task_latency_percentiles()
        assert set(pct) == {"p50", "p95", "max"}
        assert pct["p50"] <= pct["max"]

    def test_serial_reexecution_is_counted(self, sales_db, distinct_query):
        executor = faulted_executor(
            sales_db, FaultPlan.lose_partition(0), retry=RetryPolicy(max_attempts=2, backoff_base=0.005)
        )
        executor.execute(distinct_query)
        ledger = executor.timings()["fault_tolerance"]
        assert ledger["serial_reexecutions"] == 1
        assert ledger["failed_tasks"] == 1
