"""Shared-memory transport: identity, fault interplay, leak reclamation.

The transport's contract is behavioral invisibility: a D-way process run
with ``transport="shm"`` must return byte-for-byte what the same run with
``transport="pickle"`` returns (and what a serial run returns, for plans
whose parallel execution is bit-identical to begin with) — while moving
O(schema) bytes over the pipe and leaving zero segments behind, even when
workers crash mid-handoff.
"""

import multiprocessing as mp
import os

import numpy as np
import pytest

from repro.algebra.logical import SamplerNode
from repro.engine.executor import Executor
from repro.engine.table import Table
from repro.errors import SchemaError
from repro.memory import leaked_system_segments, live_segments, manager, release
from repro.optimizer.planner import QuickrPlanner
from repro.parallel import ParallelOptions
from repro.parallel import transport
from repro.parallel.executor import ParallelExecutor
from repro.parallel.faults import FaultPlan
from repro.parallel.pool import WorkerPool, scrub_shared_segments
from repro.parallel.tasks import RetryPolicy, TaskRuntime

needs_fork_and_shm = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods() or not transport.shm_available(),
    reason="requires fork workers and working POSIX shared memory",
)

DEGREE = 4


@pytest.fixture(autouse=True)
def clean_segments():
    yield
    manager().release_all()


def identical(t1: Table, t2: Table) -> bool:
    if set(t1.column_names) != set(t2.column_names) or t1.num_rows != t2.num_rows:
        return False
    for c in t1.column_names:
        a, b = t1.column(c), t2.column(c)
        same = (
            np.array_equal(a, b, equal_nan=True)
            if a.dtype.kind == "f"
            else np.array_equal(a, b)
        )
        if not same:
            return False
    return True


def parallel_run(db, plan, transport_mode, fault_plan=None):
    options = ParallelOptions(
        pool="process",
        max_workers=DEGREE,
        transport=transport_mode,
        task_seed=7,
        fault_plan=fault_plan,
    )
    return ParallelExecutor(db, parallelism=DEGREE, options=options).execute(plan)


def has_distinct(plan) -> bool:
    return any(
        isinstance(n, SamplerNode) and n.spec.kind == "distinct" for n in plan.walk()
    )


@needs_fork_and_shm
class TestTpcdsIdentity:
    """shm vs pickle vs serial on representative TPC-DS plans.

    q01: round-robin uniform (bit-identical to serial); q02: distinct
    sampler (parallel != serial by design, but shm == pickle must hold);
    q12: hash partitioning with a broadcast side.
    """

    @pytest.mark.parametrize("name", ["q01", "q02", "q12"])
    def test_shm_matches_pickle_bit_for_bit(self, tiny_tpcds, name):
        from repro.workloads.tpcds import query_by_name

        plan = QuickrPlanner(tiny_tpcds).plan(query_by_name(tiny_tpcds, name)).plan
        via_pickle = parallel_run(tiny_tpcds, plan, "pickle")
        via_shm = parallel_run(tiny_tpcds, plan, "shm")
        assert via_shm.parallel.transport == "shm"
        assert identical(via_pickle.table, via_shm.table)
        if not has_distinct(plan):
            serial = Executor(tiny_tpcds).execute(plan)
            assert identical(serial.table, via_shm.table)

    def test_o_schema_bytes_on_pipe(self, tiny_tpcds):
        from repro.workloads.tpcds import query_by_name

        plan = QuickrPlanner(tiny_tpcds).plan(query_by_name(tiny_tpcds, "q01")).plan
        result = parallel_run(tiny_tpcds, plan, "shm")
        metrics = result.parallel
        assert metrics.transport == "shm"
        assert 0 < metrics.result_bytes_on_pipe < 64 * 1024
        assert metrics.result_bytes_shared > metrics.result_bytes_on_pipe

    def test_no_segments_survive_a_run(self, tiny_tpcds):
        from repro.workloads.tpcds import query_by_name

        plan = QuickrPlanner(tiny_tpcds).plan(query_by_name(tiny_tpcds, "q01")).plan
        parallel_run(tiny_tpcds, plan, "shm")
        assert live_segments() == ()
        assert leaked_system_segments() == []


@needs_fork_and_shm
class TestChaosWithLiveSegments:
    """Faults injected while segments are in flight: crashes, hangs,
    corrupt payloads and pickle bombs, on both transports."""

    @pytest.mark.parametrize("seed", [11, 12])
    def test_chaos_identity_and_no_leaks(self, tiny_tpcds, seed):
        from repro.workloads.tpcds import query_by_name

        plan = QuickrPlanner(tiny_tpcds).plan(query_by_name(tiny_tpcds, "q01")).plan
        results = {}
        for mode in ("pickle", "shm"):
            fault_plan = FaultPlan.random(
                seed, DEGREE, crashes=1, hangs=1, corruptions=1, pickle_bombs=1
            )
            results[mode] = parallel_run(tiny_tpcds, plan, mode, fault_plan=fault_plan)
        assert results["shm"].parallel.faults_injected == 4
        assert results["shm"].parallel.task_retries >= 1
        assert identical(results["pickle"].table, results["shm"].table)
        assert leaked_system_segments() == []

    def test_corrupt_result_ships_and_is_rejected(self, tiny_tpcds):
        """A corrupted table still travels through shm — validation must see
        the damage, reject the attempt, and the retry must win."""
        from repro.workloads.tpcds import query_by_name

        plan = QuickrPlanner(tiny_tpcds).plan(query_by_name(tiny_tpcds, "q01")).plan
        fault_plan = FaultPlan.random(3, DEGREE, crashes=0, hangs=0, corruptions=2)
        chaotic = parallel_run(tiny_tpcds, plan, "shm", fault_plan=fault_plan)
        clean = parallel_run(tiny_tpcds, plan, "shm")
        assert chaotic.parallel.task_retries >= 1
        assert identical(clean.table, chaotic.table)
        assert leaked_system_segments() == []


@needs_fork_and_shm
class TestWorkerDeathReclamation:
    """A worker that dies *while holding a segment* cannot release it; the
    parent must reap it by deterministic name (satellite: pool recycle)."""

    def test_broken_pool_recycle_reclaims_segments(self):
        token = transport.new_run_token()

        def work(spec):
            table = Table("t", {"x": np.arange(1000, dtype=np.int64)})
            shipped = transport.ship_result(table, token, spec.partition, spec.attempt)
            if spec.partition == 1 and spec.attempt == 0:
                os._exit(1)  # die holding the segment: nobody gets the ref
            return (0.0, {}, shipped)

        reaped = []
        runtime = TaskRuntime(
            WorkerPool("process", max_workers=2),
            policy=RetryPolicy(max_attempts=3, speculate=False),
        )
        report = runtime.run(
            work,
            2,
            receive=lambda result, spec: (
                result[0],
                result[1],
                Table.from_ref(result[2]),
            ),
            dispose=transport.dispose_result,
            reap=lambda spec: reaped.append(
                scrub_shared_segments(
                    [transport.result_segment_name(token, spec.partition, spec.attempt)]
                )
            ),
        )
        assert report.all_succeeded
        # The dead attempt's orphan was scrubbed by the reap hook (or had
        # not hit shm yet); either way nothing survives the sweep.
        for outcome in report.outcomes:
            transport.dispose_result(outcome.payload)
        transport.sweep_results(token, [o.attempts for o in report.outcomes], keep=set())
        assert leaked_system_segments() == []

    def test_scrub_is_idempotent_and_counts(self):
        token = transport.new_run_token()
        table = Table("t", {"x": np.ones(10)})
        name = transport.result_segment_name(token, 0, 0)
        table.to_ref(segment_name=name, keep_open=False)
        assert scrub_shared_segments([name, "qkr_never_existed"]) == 1
        assert scrub_shared_segments([name]) == 0


@needs_fork_and_shm
class TestServedOverTcp:
    """The full stack: a real socket server whose engine runs D-way with shm
    transport must serve the digest of serial library-mode execution."""

    def test_served_digest_matches_serial(self, tiny_tpcds):
        from repro.optimizer.planner import QuickrPlanner as Planner
        from repro.service import QueryServer, QueryService, ServiceClient, ServiceConfig
        from repro.service.protocol import table_digest
        from repro.workloads.tpcds import query_by_name

        engine = Executor(
            tiny_tpcds,
            parallelism=DEGREE,
            parallel_options=ParallelOptions(
                pool="process", max_workers=DEGREE, transport="shm", task_seed=7
            ),
        )
        service = QueryService(tiny_tpcds, ServiceConfig(num_workers=1), executor=engine)
        server = QueryServer(service, port=0).start()
        try:
            host, port = server.address
            client = ServiceClient(host, port, timeout=120.0)
            client.hello(tenant="shm")
            reply = client.query("q01")
            client.close()
        finally:
            server.stop()
        serial = Executor(tiny_tpcds).execute(
            Planner(tiny_tpcds).plan(query_by_name(tiny_tpcds, "q01")).plan
        )
        assert reply.digest == table_digest(serial.table)
        assert leaked_system_segments() == []


class TestTransportUnits:
    """Pure transport mechanics — no process pool needed."""

    @needs_fork_and_shm
    def test_ship_partitions_aliases_broadcasts(self):
        token = transport.new_run_token()
        broadcast = Table("dim", {"k": np.arange(10, dtype=np.int64)})
        split = [
            Table("fact", {"v": np.arange(5, dtype=np.int64)}),
            Table("fact", {"v": np.arange(5, 10, dtype=np.int64)}),
        ]
        refs, names = transport.ship_partitions(
            {"fact": split, "dim": [broadcast, broadcast]}, token
        )
        try:
            # One segment per distinct table: 2 fact partitions + 1 broadcast.
            assert len(names) == 3
            assert refs["dim"][0] is refs["dim"][1]
            assert len({r.segment for r in refs["fact"]}) == 2
            for pid in range(2):
                np.testing.assert_array_equal(
                    transport.open_partition(refs["fact"][pid]).column("v"),
                    split[pid].column("v"),
                )
        finally:
            transport.release_refs(names)

    @needs_fork_and_shm
    def test_ship_result_falls_back_on_unencodable_payload(self):
        token = transport.new_run_token()
        table = Table("t", {"bad": np.array([object(), object()], dtype=object)})
        shipped = transport.ship_result(table, token, 0, 0)
        assert shipped is table  # pickle fallback, not an exception
        assert transport.sweep_results(token, [1], keep=set()) == 0

    @needs_fork_and_shm
    def test_dispose_result_releases_both_forms(self):
        token = transport.new_run_token()
        table = Table("t", {"x": np.arange(4, dtype=np.int64)})
        ref = table.to_ref(
            segment_name=transport.result_segment_name(token, 0, 0), keep_open=False
        )
        transport.dispose_result((0.0, {}, ref))  # unmapped ref form
        assert transport.result_segment_name(token, 0, 0) not in leaked_system_segments()

        ref2 = table.to_ref(
            segment_name=transport.result_segment_name(token, 0, 1), keep_open=False
        )
        mapped = Table.from_ref(ref2)
        transport.dispose_result((0.0, {}, mapped))  # mapped table form
        assert transport.result_segment_name(token, 0, 1) not in leaked_system_segments()

    def test_transport_mode_validated(self):
        with pytest.raises(Exception, match="transport"):
            ParallelOptions(transport="carrier-pigeon")

    def test_unencodable_inputs_fall_back_wholesale(self, sales_db):
        """Arena rejection of an *input* table must raise SchemaError so the
        executor can drop to pickle for the whole run."""
        token = transport.new_run_token()
        bad = Table("t", {"bad": np.array([{"not": "a string"}], dtype=object)})
        with pytest.raises(SchemaError):
            transport.ship_partitions({"t": [bad]}, token)
        assert live_segments() == ()
