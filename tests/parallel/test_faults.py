"""Tests for the seeded fault-injection harness."""

import pickle
import time

import numpy as np
import pytest

from repro.engine.table import WEIGHT_COLUMN, Table
from repro.errors import PlanError
from repro.parallel.faults import (
    FAULT_KINDS,
    Fault,
    FaultPlan,
    InjectedFault,
    UnpicklableResult,
    corrupt_table,
)


class TestFault:
    def test_rejects_unknown_kind(self):
        with pytest.raises(PlanError):
            Fault(partition=0, attempt=0, kind="meteor")

    def test_known_kinds(self):
        for kind in FAULT_KINDS:
            Fault(partition=0, attempt=0, kind=kind)


class TestFaultPlanConstruction:
    def test_random_is_deterministic(self):
        a = FaultPlan.random(seed=5, num_partitions=8, crashes=2, hangs=1)
        b = FaultPlan.random(seed=5, num_partitions=8, crashes=2, hangs=1)
        assert a.faults == b.faults

    def test_random_seed_changes_placement(self):
        plans = [
            FaultPlan.random(seed=s, num_partitions=16, crashes=2, hangs=2).faults
            for s in range(6)
        ]
        assert len({p for p in plans}) > 1

    def test_random_counts(self):
        plan = FaultPlan.random(
            seed=1, num_partitions=8, crashes=2, hangs=1, corruptions=1, pickle_bombs=1
        )
        assert plan.summary() == {"crash": 2, "hang": 1, "corrupt": 1, "pickle": 1}
        assert plan.num_faults == 5

    def test_random_targets_are_distinct(self):
        plan = FaultPlan.random(seed=3, num_partitions=4, crashes=2, hangs=2)
        targets = [(f.partition, f.attempt) for f in plan.faults]
        assert len(set(targets)) == len(targets)
        assert all(f.attempt == 0 for f in plan.faults)  # default grid: first attempts

    def test_random_overflow_raises(self):
        with pytest.raises(PlanError):
            FaultPlan.random(seed=1, num_partitions=2, crashes=3)

    def test_duplicate_target_raises(self):
        with pytest.raises(PlanError, match="duplicate fault"):
            FaultPlan(
                [Fault(0, 0, "crash"), Fault(0, 0, "hang")]
            )

    def test_merged_with(self):
        merged = FaultPlan([Fault(0, 0, "crash")]).merged_with(FaultPlan.lose_partition(3))
        assert merged.fault_for(0, 0).kind == "crash"
        assert merged.lost_partitions == frozenset({3})


class TestInjection:
    def test_crash_raises_before_work(self):
        plan = FaultPlan([Fault(1, 0, "crash")])
        with pytest.raises(InjectedFault):
            plan.before_work(1, 0)
        plan.before_work(1, 1)  # the retry is clean
        plan.before_work(0, 0)  # other partitions untouched

    def test_injected_fault_is_not_a_repro_error(self):
        # The runtime must wrap injected crashes like foreign exceptions.
        from repro.errors import ReproError

        assert not issubclass(InjectedFault, ReproError)

    def test_hang_sleeps_then_returns(self):
        plan = FaultPlan([Fault(0, 0, "hang", seconds=0.05)])
        start = time.perf_counter()
        plan.before_work(0, 0)
        assert time.perf_counter() - start >= 0.05

    def test_lost_partition_crashes_every_attempt(self):
        plan = FaultPlan.lose_partition(2)
        for attempt in range(5):
            with pytest.raises(InjectedFault):
                plan.before_work(2, attempt)
        plan.before_work(1, 0)

    def test_corrupt_uses_the_callers_corrupter(self):
        plan = FaultPlan([Fault(0, 0, "corrupt")])
        assert plan.after_work(0, 0, "payload", corrupter=lambda p: p + "-damaged") == (
            "payload-damaged"
        )
        assert plan.after_work(0, 1, "payload", corrupter=str.upper) == "payload"

    def test_pickle_fault_dies_mid_pickle(self):
        plan = FaultPlan([Fault(0, 0, "pickle")])
        boobytrapped = plan.after_work(0, 0, {"rows": 3})
        assert isinstance(boobytrapped, UnpicklableResult)
        assert boobytrapped.payload == {"rows": 3}
        with pytest.raises(pickle.PicklingError):
            pickle.dumps(boobytrapped)


class TestCorruptTable:
    def test_poisons_weights_when_present(self):
        table = Table("t", {"a": np.arange(4), WEIGHT_COLUMN: np.ones(4)})
        bad = corrupt_table(table)
        assert np.isnan(bad.weights()).all()

    def test_drops_a_column_otherwise(self):
        table = Table("t", {"a": np.arange(4), "b": np.arange(4)})
        bad = corrupt_table(table)
        assert len(bad.column_names) == 1
