"""Governance across the parallel scheduler: abort, salvage, clean unwind.

The invariants under test:

* a governed parallel run with generous limits matches the ungoverned run
  bit-for-bit on every pool backend;
* cancellation/deadline/budget abort the scheduler with the typed error —
  queued tasks are abandoned, live attempts discarded, and (because the
  session-wide leak fixture audits /dev/shm) no segment survives;
* a mid-flight deadline/budget trip on a *degradable* plan salvages the
  survivors-so-far into a re-weighted :class:`PartialResult` carrying the
  governance ``abort_reason`` — degrade accuracy, not availability;
* cancellation never salvages: a cancelled query has no one waiting.
"""

import threading
import time

import numpy as np
import pytest

from repro.algebra.aggregates import count, sum_
from repro.algebra.builder import from_node, scan
from repro.algebra.expressions import col
from repro.algebra.logical import SamplerNode
from repro.engine.executor import Executor, PartialResult
from repro.engine.governance import GovernanceContext
from repro.errors import DeadlineExceeded, QueryCancelled
from repro.parallel import Fault, FaultPlan, ParallelOptions
from repro.parallel.tasks import RetryPolicy
from repro.samplers.distinct import DistinctSpec
from repro.samplers.uniform import UniformSpec

DEGREE = 4
POOLS = ("inline", "thread", "process")

FAST = RetryPolicy(backoff_base=0.005, backoff_max=0.05, poll_interval=0.005,
                   speculate=False)


def governed_executor(db, pool="thread", fault_plan=None, **overrides):
    options = dict(
        pool=pool,
        min_partition_rows=1_000,
        # Oversubscribe so 1-core CI still runs tasks concurrently.
        max_workers=DEGREE + 1,
        retry=FAST,
        fault_plan=fault_plan,
        allow_degraded=True,
    )
    options.update(overrides)
    return Executor(db, parallelism=DEGREE, parallel_options=ParallelOptions(**options))


@pytest.fixture(scope="module")
def uniform_query(sales_db):
    return (
        from_node(SamplerNode(scan(sales_db, "sales").node, UniformSpec(0.1, seed=42)))
        .groupby("s_item")
        .agg(sum_(col("s_amount"), "total"), count("n"))
        .orderby("s_item")
        .build("governed_uniform")
    )


@pytest.fixture(scope="module")
def distinct_query(sales_db):
    return (
        from_node(SamplerNode(
            scan(sales_db, "sales").node,
            DistinctSpec(("s_item",), delta=8, p=0.2, seed=5),
        ))
        .groupby("s_item")
        .agg(sum_(col("s_amount"), "total"))
        .orderby("s_item")
        .build("governed_distinct")
    )


class TestGovernedRunsAreUnperturbed:
    @pytest.mark.parametrize("pool", POOLS)
    def test_bit_identical_under_generous_contract(self, sales_db, uniform_query, pool):
        executor = governed_executor(sales_db, pool=pool)
        plain = executor.execute(uniform_query)
        ctx = GovernanceContext.with_timeout(120.0, memory_budget_bytes=1 << 30)
        governed = executor.execute(uniform_query, governance=ctx)
        assert not governed.degraded
        for name in plain.table.column_names:
            np.testing.assert_array_equal(
                plain.table.column(name), governed.table.column(name), err_msg=name
            )


class TestAbortIsTypedAndClean:
    @pytest.mark.parametrize("pool", POOLS)
    def test_pre_cancelled_raises_before_work(self, sales_db, uniform_query, pool):
        ctx = GovernanceContext()
        ctx.token.cancel("caller-gone")
        with pytest.raises(QueryCancelled) as info:
            governed_executor(sales_db, pool=pool).execute(uniform_query, governance=ctx)
        assert info.value.reason_code == "caller-gone"

    def test_mid_flight_cancel_stops_within_task_boundary(self, sales_db, uniform_query):
        # Stall every partition with a hang fault so the run is provably
        # mid-flight when the token lands; the scheduler's poll must then
        # unwind without waiting for the hangs to finish.
        plan = FaultPlan([Fault(p, 0, "hang", seconds=2.0) for p in range(DEGREE)])
        executor = governed_executor(sales_db, pool="thread", fault_plan=plan)
        ctx = GovernanceContext()
        timer = threading.Timer(0.2, ctx.token.cancel, args=("mid-flight",))
        timer.start()
        t0 = time.perf_counter()
        with pytest.raises(QueryCancelled):
            executor.execute(uniform_query, governance=ctx)
        elapsed = time.perf_counter() - t0
        timer.cancel()
        # Unwound at the scheduler's next poll, not after the 2 s hangs.
        assert elapsed < 1.5

    def test_cancel_never_salvages_even_when_degradable(self, sales_db, uniform_query):
        # Partitions 2/3 hang; 0/1 complete. Cancel mid-flight: despite
        # two survivors and a degradable plan, the answer is *not* a
        # PartialResult — nobody is waiting for it.
        plan = FaultPlan([Fault(p, 0, "hang", seconds=1.5) for p in (2, 3)])
        executor = governed_executor(sales_db, pool="thread", fault_plan=plan)
        ctx = GovernanceContext()
        timer = threading.Timer(0.3, ctx.token.cancel, args=("client-disconnect",))
        timer.start()
        with pytest.raises(QueryCancelled):
            executor.execute(uniform_query, governance=ctx)
        timer.cancel()


class TestDeadlineSalvage:
    def test_survivors_become_partial_result(self, sales_db, uniform_query):
        # Two partitions finish fast, two hang past the deadline: the
        # governed abort must salvage the survivors into a re-weighted
        # partial answer tagged with the governance reason.
        plan = FaultPlan([Fault(p, 0, "hang", seconds=2.0) for p in (2, 3)])
        executor = governed_executor(sales_db, pool="thread", fault_plan=plan)
        ctx = GovernanceContext.with_timeout(0.5)
        result = executor.execute(uniform_query, governance=ctx)
        assert isinstance(result, PartialResult)
        assert result.degraded
        assert result.abort_reason == "deadline"
        assert set(result.lost_partitions) == {2, 3}
        assert result.coverage == pytest.approx(0.5)
        assert result.reweight_factor == pytest.approx(2.0)
        # The re-weighted estimate stays in the right ballpark of the
        # fault-free answer (unbiasedness is asserted statistically by the
        # chaos bench; here we check the rescale actually applied).
        full = governed_executor(sales_db, pool="thread").execute(uniform_query)
        expected = float(np.sum(full.table.column("total")))
        salvaged = float(np.sum(result.table.column("total")))
        assert salvaged == pytest.approx(expected, rel=0.5)

    def test_fault_loss_keeps_abort_reason_none(self, sales_db, uniform_query):
        # PR-4 behavior is unchanged: a partition lost to crashes (not
        # governance) yields a PartialResult without an abort_reason.
        executor = governed_executor(
            sales_db, pool="thread", fault_plan=FaultPlan.lose_partition(1)
        )
        result = executor.execute(uniform_query)
        assert isinstance(result, PartialResult)
        assert result.abort_reason is None

    def test_non_degradable_plan_raises_typed(self, sales_db, distinct_query):
        # Distinct-sampled plans cannot absorb lost partitions; a governed
        # abort must surface the deadline error, never a silent serial
        # re-execution that would blow the deadline it just enforced.
        plan = FaultPlan([Fault(p, 0, "hang", seconds=2.0) for p in range(DEGREE)])
        executor = governed_executor(sales_db, pool="thread", fault_plan=plan)
        ctx = GovernanceContext.with_timeout(0.4)
        t0 = time.perf_counter()
        with pytest.raises(DeadlineExceeded):
            executor.execute(distinct_query, governance=ctx)
        assert time.perf_counter() - t0 < 1.5


class TestShmExhaustionFallback:
    def test_injected_exhaustion_falls_back_to_pickle(self, sales_db, uniform_query):
        # An shm fault makes one result's transport hit ENOSPC; the
        # attempt must still succeed via the pickle fallback, counted.
        fault_plan = FaultPlan([Fault(1, 0, "shm")])
        executor = governed_executor(
            sales_db, pool="process", fault_plan=fault_plan, transport="shm"
        )
        plain = governed_executor(sales_db, pool="process", transport="shm").execute(
            uniform_query
        )
        result = executor.execute(uniform_query)
        assert result.parallel.transport == "shm"
        assert not result.degraded  # fallback, not failure
        fallbacks = executor.registry.value("transport.shm_fallbacks")
        assert fallbacks == 1.0
        for name in plain.table.column_names:
            np.testing.assert_array_equal(
                plain.table.column(name), result.table.column(name), err_msg=name
            )
