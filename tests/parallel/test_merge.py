"""Unit tests for the partition-output merge layer.

The contract under test: ``merge_rows`` reproduces the serial row stream
exactly, and the partial-aggregate pipeline (partial_aggregate ->
merge_partials -> finalize_partial) matches the serial
``execute_aggregate`` up to floating-point reassociation — including
confidence intervals, the AVG delta method, universe variance and
COUNT DISTINCT rescaling.
"""

import numpy as np
import pytest

from repro.algebra.aggregates import avg, count, count_distinct, max_, min_, sum_
from repro.algebra.expressions import col
from repro.algebra.logical import Aggregate, Scan
from repro.engine.operators import execute_aggregate
from repro.engine.table import WEIGHT_COLUMN, Table, rowid_column_name
from repro.errors import PlanError
from repro.parallel import (
    finalize_partial,
    merge_heavy_hitters,
    merge_kmv,
    merge_partials,
    merge_rows,
    partial_aggregate,
)
from repro.sketches.distinct_count import KMVCounter
from repro.sketches.heavy_hitters import LossyCounter


def weighted_table(n=4_000, seed=2):
    gen = np.random.default_rng(seed)
    return Table(
        "t",
        {
            "g": gen.integers(0, 9, n),
            "k": gen.integers(0, 40, n),
            "x": gen.normal(5.0, 2.0, n),
            WEIGHT_COLUMN: gen.choice([2.0, 4.0, 8.0], n),
        },
    )


ALL_AGGS = (
    sum_(col("x"), "s"),
    count("n"),
    avg(col("x"), "a"),
    min_(col("x"), "mn"),
    max_(col("x"), "mx"),
    count_distinct(col("k"), "d"),
)


def agg_node(group_by, aggs=ALL_AGGS):
    child = Scan("t", ("g", "k", "x"))
    return Aggregate(child, group_by, aggs)


def via_partials(table, node, num_parts=3, compute_ci=False,
                 universe_rescale=None, universe_variance=None):
    partials = [
        partial_aggregate(part, node, compute_ci=compute_ci, universe_variance=universe_variance)
        for part in table.partition(num_parts)
    ]
    return finalize_partial(
        merge_partials(partials),
        node,
        compute_ci=compute_ci,
        universe_rescale=universe_rescale,
        universe_variance=universe_variance,
    )


def assert_tables_match(serial: Table, merged: Table, sort_keys):
    assert set(serial.column_names) == set(merged.column_names)
    assert serial.num_rows == merged.num_rows
    so = np.lexsort([serial.column(k) for k in reversed(sort_keys)]) if sort_keys else slice(None)
    mo = np.lexsort([merged.column(k) for k in reversed(sort_keys)]) if sort_keys else slice(None)
    for c in serial.column_names:
        np.testing.assert_allclose(
            serial.column(c)[so], merged.column(c)[mo],
            rtol=1e-9, atol=1e-12, equal_nan=True, err_msg=c,
        )


class TestMergeRows:
    def test_restores_exact_serial_order(self):
        t = weighted_table().with_columns(
            {rowid_column_name(0): np.arange(4_000, dtype=np.int64)}
        )
        parts = t.partition(4)
        merged = merge_rows(list(reversed(parts)))  # arrival order scrambled
        for c in t.column_names:
            np.testing.assert_array_equal(merged.column(c), t.column(c))

    def test_without_lineage_is_plain_concat(self):
        t = weighted_table(n=30)
        merged = merge_rows(t.partition(3))
        assert merged.num_rows == 30

    def test_empty_input_rejected(self):
        with pytest.raises(PlanError):
            merge_rows([])


class TestPartialAggregate:
    def test_grouped_matches_serial(self):
        t = weighted_table()
        node = agg_node(("g",))
        serial = execute_aggregate(t, ("g",), ALL_AGGS)
        merged = via_partials(t, node)
        assert_tables_match(serial, merged, ["g"])

    def test_grouped_with_ci_matches_serial(self):
        t = weighted_table()
        node = agg_node(("g",))
        serial = execute_aggregate(t, ("g",), ALL_AGGS, compute_ci=True)
        merged = via_partials(t, node, compute_ci=True)
        assert_tables_match(serial, merged, ["g"])

    def test_scalar_matches_serial(self):
        t = weighted_table()
        node = agg_node(())
        serial = execute_aggregate(t, (), ALL_AGGS, compute_ci=True)
        merged = via_partials(t, node, compute_ci=True)
        assert_tables_match(serial, merged, [])

    def test_empty_input_scalar_nan_semantics(self):
        t = weighted_table().head(0)
        node = agg_node(())
        serial = execute_aggregate(t, (), ALL_AGGS)
        merged = via_partials(t, node, num_parts=2)
        assert_tables_match(serial, merged, [])

    def test_unweighted_input(self):
        w = weighted_table()
        t = Table("t", {c: w.column(c) for c in ("g", "k", "x")})
        assert not t.has_weights()
        node = agg_node(("g",))
        serial = execute_aggregate(t, ("g",), ALL_AGGS)
        merged = via_partials(t, node)
        assert_tables_match(serial, merged, ["g"])

    def test_universe_variance_matches_serial(self):
        # Universe sampling at p couples rows that share a key value; the
        # partial state must keep per-(group, key) inner sums so the CI
        # survives partitions splitting a key.
        p = 0.25
        t = weighted_table()
        t = t.with_columns({WEIGHT_COLUMN: np.full(t.num_rows, 1.0 / p)})
        aggs = (sum_(col("x"), "s"), count("n"))
        node = agg_node(("g",), aggs)
        uv = (("k",), p)
        serial = execute_aggregate(t, ("g",), aggs, compute_ci=True, universe_variance=uv)
        merged = via_partials(t, node, compute_ci=True, universe_variance=uv)
        assert_tables_match(serial, merged, ["g"])

    def test_count_distinct_rescale_matches_serial(self):
        p = 0.2
        t = weighted_table()
        aggs = (count_distinct(col("k"), "d"),)
        node = agg_node(("g",), aggs)
        rescale = {"d": 1.0 / p}
        serial = execute_aggregate(t, ("g",), aggs, compute_ci=True, universe_rescale=rescale)
        merged = via_partials(t, node, compute_ci=True, universe_rescale=rescale)
        assert_tables_match(serial, merged, ["g"])

    def test_group_order_is_first_appearance(self):
        t = Table("t", {"g": np.array([3, 1, 3, 2]), "k": np.zeros(4, dtype=np.int64),
                        "x": np.ones(4)})
        node = agg_node(("g",), (count("n"),))
        merged = via_partials(t, node, num_parts=1)
        np.testing.assert_array_equal(merged.column("g"), [3, 1, 2])


class TestSketchFolds:
    def test_kmv_fold_equals_single_pass(self):
        gen = np.random.default_rng(4)
        values = gen.integers(0, 5_000, 20_000)
        whole = KMVCounter(k=256)
        whole.add_many(values.tolist())
        parts = []
        for chunk in np.array_split(values, 4):
            c = KMVCounter(k=256)
            c.add_many(chunk.tolist())
            parts.append(c)
        assert merge_kmv(parts).estimate() == whole.estimate()

    def test_heavy_hitter_fold_finds_the_heavy_value(self):
        gen = np.random.default_rng(4)
        values = np.concatenate([np.full(5_000, 77), gen.integers(100, 10_000, 15_000)])
        gen.shuffle(values)
        parts = []
        for chunk in np.array_split(values, 4):
            c = LossyCounter(tau=0.001, support=0.01)
            for v in chunk.tolist():
                c.add(v)
            parts.append(c)
        merged = merge_heavy_hitters(parts)
        assert merged.items_seen == len(values)
        assert 77 in dict(merged.heavy_hitters())
        assert merged.estimate(77) >= 5_000 - int(merged.tau * len(values)) * 4
