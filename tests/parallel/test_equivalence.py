"""Serial-vs-parallel equivalence (the parallel subsystem's acceptance bar).

Uniform and universe samplers make per-row decisions from row identity
(lineage hash) or key value alone, so a partition-parallel run with the row
merge must reproduce the serial answer *bit for bit* — same rows, same
order, same floating-point results. The distinct sampler draws fresh
per-partition randomness, so only its stratification guarantee
(``n >= min(delta, freq)`` rows per stratum) and statistical accuracy are
required to survive the merge.
"""

import numpy as np
import pytest

from repro.algebra.aggregates import avg, count, count_distinct, max_, min_, sum_
from repro.algebra.builder import from_node, scan
from repro.algebra.expressions import col
from repro.algebra.logical import SamplerNode
from repro.engine.executor import Executor
from repro.parallel import ParallelOptions
from repro.samplers.distinct import DistinctSpec
from repro.samplers.uniform import UniformSpec
from repro.samplers.universe import UniverseSpec

DEGREE = 4
POOLS = ("inline", "thread", "process")


def sampled(builder, spec):
    return from_node(SamplerNode(builder.node, spec))


def run_both(db, query, pool="inline", merge="rows"):
    serial = Executor(db).execute(query)
    parallel = Executor(
        db,
        parallelism=DEGREE,
        parallel_options=ParallelOptions(pool=pool, merge=merge, min_partition_rows=1_000),
    ).execute(query)
    assert parallel.parallel is not None
    return serial, parallel


def assert_bit_identical(serial, parallel):
    s, p = serial.table, parallel.table
    assert s.column_names == p.column_names
    assert s.num_rows == p.num_rows
    for c in s.column_names:
        np.testing.assert_array_equal(s.column(c), p.column(c), err_msg=c)


def assert_same_estimates(serial, parallel, sort_keys):
    """Order-normalized comparison with floating-point tolerance (the
    partial merge reassociates sums and orders groups by first appearance)."""
    s, p = serial.table, parallel.table
    assert set(s.column_names) == set(p.column_names)
    assert s.num_rows == p.num_rows
    so = np.lexsort([s.column(k) for k in reversed(sort_keys)])
    po = np.lexsort([p.column(k) for k in reversed(sort_keys)])
    for c in s.column_names:
        np.testing.assert_allclose(
            s.column(c)[so], p.column(c)[po], rtol=1e-9, atol=1e-12, err_msg=c
        )


@pytest.fixture(scope="module")
def uniform_query(sales_db):
    return (
        sampled(scan(sales_db, "sales"), UniformSpec(0.1, seed=42))
        .groupby("s_item")
        .agg(sum_(col("s_amount"), "total"), count("n"), avg(col("s_qty"), "avg_qty"))
        .orderby("s_item")
        .build("uniform_q")
    )


@pytest.fixture(scope="module")
def universe_query(sales_db):
    return (
        sampled(scan(sales_db, "sales"), UniverseSpec(("s_cust",), 0.25, seed=7))
        .groupby("s_day")
        .agg(sum_(col("s_amount"), "total"), count_distinct(col("s_cust"), "custs"))
        .orderby("s_day")
        .build("universe_q")
    )


@pytest.fixture(scope="module")
def join_query(sales_db):
    joined = scan(sales_db, "sales").join(scan(sales_db, "item"), on=[("s_item", "i_item")])
    return (
        sampled(joined, UniformSpec(0.2, seed=3))
        .groupby("i_cat")
        .agg(sum_(col("s_amount"), "total"), min_(col("i_price"), "mn"), max_(col("i_price"), "mx"))
        .orderby("i_cat")
        .build("join_q")
    )


class TestBitIdenticalRowMerge:
    @pytest.mark.parametrize("pool", POOLS)
    def test_uniform_sampler(self, sales_db, uniform_query, pool):
        serial, parallel = run_both(sales_db, uniform_query, pool=pool)
        assert parallel.parallel.strategy == "round-robin[sales]"
        assert parallel.parallel.pool_mode == pool
        assert_bit_identical(serial, parallel)

    def test_universe_sampler(self, sales_db, universe_query):
        serial, parallel = run_both(sales_db, universe_query, pool="process")
        assert parallel.parallel.strategy == "round-robin[sales]"
        assert_bit_identical(serial, parallel)

    def test_sampled_star_join_with_broadcast(self, sales_db, join_query):
        serial, parallel = run_both(sales_db, join_query, pool="thread")
        assert parallel.parallel.strategy == "round-robin[sales]"
        assert parallel.parallel.partitioned_tables == ("sales",)
        assert_bit_identical(serial, parallel)

    def test_cardinalities_and_cost_match_serial(self, sales_db, uniform_query):
        serial, parallel = run_both(sales_db, uniform_query)
        assert sorted(serial.cardinalities.values()) == sorted(parallel.cardinalities.values())
        assert parallel.cost.machine_hours == pytest.approx(serial.cost.machine_hours)

    def test_modeled_speedup_reported(self, sales_db, uniform_query):
        _, parallel = run_both(sales_db, uniform_query)
        assert parallel.parallel.modeled_speedup > 1.0
        assert len(parallel.parallel.worker_seconds) == DEGREE


class TestPartialMerge:
    def test_uniform_estimates_match(self, sales_db, uniform_query):
        serial, parallel = run_both(sales_db, uniform_query, merge="partial")
        assert parallel.parallel.merge_mode == "partial"
        assert_same_estimates(serial, parallel, ["s_item"])

    def test_join_estimates_match(self, sales_db, join_query):
        serial, parallel = run_both(sales_db, join_query, pool="process", merge="partial")
        assert_same_estimates(serial, parallel, ["i_cat"])

    def test_partial_downgrades_to_rows_without_aggregate(self, sales_db):
        query = sampled(scan(sales_db, "sales"), UniformSpec(0.05, seed=8)).build("no_agg")
        serial, parallel = run_both(sales_db, query, merge="partial")
        assert parallel.parallel.merge_mode == "rows"
        assert_bit_identical(serial, parallel)


class TestDistinctSamplerGuarantee:
    def test_stratification_survives_the_merge(self, sales_db):
        """Aligned hash partitioning keeps every stratum whole, so the
        per-stratum ``>= min(delta, freq)`` guarantee holds exactly after
        the union — even though per-partition randomness differs from the
        serial run's."""
        delta = 8
        query = (
            sampled(scan(sales_db, "sales"), DistinctSpec(("s_item",), delta=delta, p=0.05, seed=5))
            .groupby("s_item")
            .agg(count("raw_rows"))
            .build("distinct_q")
        )
        serial, parallel = run_both(sales_db, query, pool="process")
        assert parallel.parallel.strategy == "hash[distinct:s_item]"

        sales = sales_db.table("sales")
        freq = np.bincount(sales.column("s_item"))
        for result in (serial, parallel):
            # every stratum present
            assert result.table.num_rows == len(freq)
            order = np.argsort(result.table.column("s_item"))
            est = result.table.column("raw_rows")[order]
            # HT count estimate stays statistically close to the truth
            rel = np.abs(est - freq) / freq
            assert rel.max() < 0.9  # ~3 sigma for p=0.05 on ~500-row strata

    def test_low_frequency_strata_kept_exactly(self, sales_db):
        """Strata smaller than delta must be kept in full: their HT count is
        exact (weight 1 rows), parallel or not."""
        gen = np.random.default_rng(11)
        from repro.engine.table import Database, Table

        db = Database()
        # 30 strata of 3 rows (below delta) on top of 4 bulk strata.
        rare = np.repeat(np.arange(100, 130), 3)
        bulk = gen.integers(0, 4, 6_000)
        values = np.concatenate([bulk, rare]).astype(np.int64)
        gen.shuffle(values)
        db.register(Table("t", {"s": values, "x": np.ones(len(values))}))
        query = (
            sampled(scan(db, "t"), DistinctSpec(("s",), delta=10, p=0.1, seed=3))
            .groupby("s")
            .agg(count("n"))
            .build("rare_q")
        )
        _, parallel = run_both(db, query, pool="inline")
        assert parallel.parallel.strategy == "hash[distinct:s]"
        out = parallel.table
        for stratum in range(100, 130):
            mask = out.column("s") == stratum
            assert mask.any(), f"stratum {stratum} missing"
            assert out.column("n")[mask][0] == pytest.approx(3.0)


class TestSerialFallback:
    def test_small_input_falls_back_with_reason(self, sales_db):
        query = scan(sales_db, "item").groupby("i_cat").agg(count("n")).build("tiny_q")
        serial, parallel = run_both(sales_db, query)
        assert parallel.parallel.strategy == "serial-fallback"
        assert "threshold" in parallel.parallel.reason
        assert_bit_identical(serial, parallel)

    def test_union_all_falls_back(self, sales_db):
        query = (
            scan(sales_db, "sales")
            .union_all(scan(sales_db, "sales"))
            .groupby("s_item")
            .agg(count("n"))
            .build("union_q")
        )
        serial, parallel = run_both(sales_db, query)
        assert parallel.parallel.strategy == "serial-fallback"
        assert "not partition-pure" in parallel.parallel.reason
        assert_bit_identical(serial, parallel)

    def test_parallelism_one_is_serial(self, sales_db, uniform_query):
        result = Executor(sales_db, parallelism=1).execute(uniform_query)
        assert result.parallel is None
