"""Unit tests for the parallel input partitioners."""

import numpy as np
import pytest

from repro.engine.table import WEIGHT_COLUMN, Table, rowid_column_name
from repro.errors import PlanError
from repro.parallel import HASH, ROUND_ROBIN, Partitioner, co_partitioners


def make(n=100):
    return Table("t", {"k": np.arange(n) % 11, "v": np.arange(n, dtype=np.float64)})


class TestRoundRobin:
    def test_exactly_n_partitions_cover_input(self):
        parts = Partitioner(4).split(make(103))
        assert len(parts) == 4
        assert sum(p.num_rows for p in parts) == 103
        merged = sorted(np.concatenate([p.column("v") for p in parts]).tolist())
        assert merged == list(range(103))

    def test_pads_with_empty_partitions(self):
        parts = Partitioner(8).split(make(3))
        assert len(parts) == 8
        assert sum(p.num_rows for p in parts) == 3
        assert all(p.num_rows == 0 for p in parts[3:])

    def test_single_partition_is_identity(self):
        t = make()
        assert Partitioner(1).split(t)[0] is t

    def test_assignments_deal_by_position(self):
        a = Partitioner(3).assignments(make(7))
        np.testing.assert_array_equal(a, [0, 1, 2, 0, 1, 2, 0])

    def test_describe(self):
        assert Partitioner(4).describe() == "round-robin x4"


class TestHash:
    def test_exactly_n_partitions_cover_input(self):
        parts = Partitioner(4, HASH, ("k",)).split(make(200))
        assert len(parts) == 4
        merged = sorted(np.concatenate([p.column("v") for p in parts]).tolist())
        assert merged == list(range(200))

    def test_equal_keys_share_a_partition(self):
        t = make(300)
        assignments = Partitioner(4, HASH, ("k",)).assignments(t)
        for key in range(11):
            assert len(set(assignments[t.column("k") == key].tolist())) == 1

    def test_describe(self):
        assert Partitioner(4, HASH, ("k", "v")).describe() == "hash(k,v)x4"


class TestReservedColumnsRideAlong:
    def test_weights_and_lineage_preserved(self):
        n = 90
        gen = np.random.default_rng(5)
        t = make(n).with_columns(
            {
                WEIGHT_COLUMN: gen.uniform(1, 4, n),
                rowid_column_name(0): np.arange(n, dtype=np.int64),
            }
        )
        total = float((t.weights() * t.column("v")).sum())
        for part in (Partitioner(4), Partitioner(4, HASH, ("k",))):
            pieces = part.split(t)
            assert all(p.has_weights() and p.has_lineage() for p in pieces)
            split_total = sum(float((p.weights() * p.column("v")).sum()) for p in pieces)
            np.testing.assert_allclose(split_total, total)


class TestCoPartitioners:
    def test_matching_keys_land_together(self):
        gen = np.random.default_rng(9)
        left = Table("l", {"a": gen.integers(0, 50, 400)})
        right = Table("r", {"b": gen.integers(0, 50, 150)})
        pl, pr = co_partitioners(4, ["a"], ["b"], seed=3)
        la, ra = pl.assignments(left), pr.assignments(right)
        route = {}
        for key, dest in zip(left.column("a"), la):
            route.setdefault(int(key), set()).add(int(dest))
        for key, dest in zip(right.column("b"), ra):
            route.setdefault(int(key), set()).add(int(dest))
        assert all(len(dests) == 1 for dests in route.values())


class TestValidation:
    def test_rejects_zero_partitions(self):
        with pytest.raises(PlanError):
            Partitioner(0)

    def test_rejects_unknown_strategy(self):
        with pytest.raises(PlanError):
            Partitioner(2, "range")

    def test_hash_needs_columns(self):
        with pytest.raises(PlanError):
            Partitioner(2, HASH)

    def test_round_robin_constant_exported(self):
        assert Partitioner(2).strategy == ROUND_ROBIN
