"""Unit tests for plan analysis (precursor split, strategy choice) and
worker-plan surgery."""

from repro.algebra.addressing import scan_ordinals
from repro.algebra.aggregates import count, sum_
from repro.algebra.builder import from_node, scan
from repro.algebra.expressions import col
from repro.algebra.logical import Aggregate, Join, SamplerNode, Scan
from repro.parallel import analyze_plan, build_worker_plan
from repro.parallel.plan import worker_table_name
from repro.samplers.distinct import DistinctSpec
from repro.samplers.uniform import UniformSpec


def sampled(builder, spec):
    return from_node(SamplerNode(builder.node, spec))


class TestWorkerTableName:
    def test_zero_padded_per_scan_occurrence(self):
        assert worker_table_name(0) == "__scan000__"
        assert worker_table_name(12) == "__scan012__"


class TestStrategySelection:
    def test_plain_aggregate_round_robins_the_fact_table(self, sales_db):
        plan = scan(sales_db, "sales").groupby("s_item").agg(count("n")).build("q").plan
        a = analyze_plan(plan, sales_db)
        assert a.ok
        assert a.strategy == "round-robin[sales]"
        assert isinstance(a.aggregate, Aggregate)
        assert a.split is a.aggregate.child
        assert a.split_address == a.aggregate_address + (0,)
        assert a.partitioned_tables == ("sales",)

    def test_star_join_broadcasts_the_dimension(self, sales_db):
        q = (
            scan(sales_db, "sales")
            .join(scan(sales_db, "item"), on=[("s_item", "i_item")])
            .groupby("i_cat")
            .agg(sum_(col("s_amount"), "total"))
            .build("q")
        )
        a = analyze_plan(q.plan, sales_db)
        assert a.ok and a.strategy == "round-robin[sales]"
        modes = {e.table: e.mode for e in a.scans}
        assert modes == {"sales": "partition-rr", "item": "broadcast"}

    def test_fact_fact_join_co_partitions_on_keys(self, sales_db):
        q = (
            scan(sales_db, "sales")
            .join(scan(sales_db, "returns"), on=[("s_cust", "r_cust")])
            .groupby("s_item")
            .agg(count("n"))
            .build("q")
        )
        a = analyze_plan(q.plan, sales_db, min_partition_rows=1_000)
        assert a.ok
        assert a.strategy == "hash[join:s_cust=r_cust]"
        by_table = {e.table: e for e in a.scans}
        assert by_table["sales"].mode == "partition-hash"
        assert by_table["sales"].hash_columns == ("s_cust",)
        assert by_table["returns"].mode == "partition-hash"
        assert by_table["returns"].hash_columns == ("r_cust",)

    def test_distinct_sampler_aligns_hash_with_strata(self, sales_db):
        q = (
            sampled(scan(sales_db, "sales"), DistinctSpec(("s_item",), delta=8, p=0.05, seed=5))
            .groupby("s_item")
            .agg(count("n"))
            .build("q")
        )
        a = analyze_plan(q.plan, sales_db)
        assert a.ok
        assert a.strategy == "hash[distinct:s_item]"
        (entry,) = a.scans
        assert entry.mode == "partition-hash" and entry.hash_columns == ("s_item",)
        # Exactly the sampler's (precursor-relative) address is aligned.
        from repro.algebra.addressing import walk_with_addresses

        sampler_addresses = [
            addr for addr, n in walk_with_addresses(a.split) if isinstance(n, SamplerNode)
        ]
        assert a.aligned_sampler_addresses == frozenset(sampler_addresses)

    def test_no_aggregate_splits_at_the_root(self, sales_db):
        q = sampled(scan(sales_db, "sales"), UniformSpec(0.1, seed=1)).build("q")
        a = analyze_plan(q.plan, sales_db)
        assert a.ok
        assert a.aggregate is None
        assert a.split is q.plan
        assert a.split_address == ()


class TestFallbackReasons:
    def test_small_input_reports_threshold(self, sales_db):
        plan = scan(sales_db, "sales").groupby("s_item").agg(count("n")).build("q").plan
        a = analyze_plan(plan, sales_db, min_partition_rows=10**6)
        assert not a.ok
        assert "threshold" in a.reason
        assert a.strategy == "serial-fallback"

    def test_union_all_is_not_partition_pure(self, sales_db):
        q = (
            scan(sales_db, "sales")
            .union_all(scan(sales_db, "sales"))
            .groupby("s_item")
            .agg(count("n"))
            .build("q")
        )
        a = analyze_plan(q.plan, sales_db)
        assert not a.ok and "not partition-pure" in a.reason

    def test_outer_join_needs_global_view(self, sales_db):
        q = (
            scan(sales_db, "sales")
            .join(scan(sales_db, "returns"), on=[("s_cust", "r_cust")], how="left")
            .groupby("s_item")
            .agg(count("n"))
            .build("q")
        )
        a = analyze_plan(q.plan, sales_db)
        assert not a.ok and "left-outer join" in a.reason


class TestSharedScanObject:
    """One Scan *object* on both sides of a self-join used to disable
    lineage (and with it, parallelism) entirely; addressing gives each
    occurrence its own ordinal instead."""

    def _self_join_plan(self, shared):
        left = (
            from_node(shared)
            .rename(l_item="s_item", l_cust="s_cust", l_amount="s_amount")
            .node
        )
        join = Join(left, shared, ("l_cust",), ("s_cust",))
        return from_node(join).groupby("l_item").agg(count("n")).build("self_join").plan

    def test_occurrences_get_distinct_ordinals(self):
        shared = Scan("sales", ("s_item", "s_cust", "s_amount"))
        plan = self._self_join_plan(shared)
        ordinals = scan_ordinals(plan)
        assert sorted(ordinals.values()) == [0, 1]
        assert len(ordinals) == 2  # two addresses, one object

    def test_self_join_parallelizes(self, sales_db):
        shared = Scan("sales", ("s_item", "s_cust", "s_amount"))
        plan = self._self_join_plan(shared)
        assert sum(1 for n in plan.walk() if n is shared) == 2
        a = analyze_plan(plan, sales_db, min_partition_rows=1_000)
        assert a.ok, a.reason
        # Both occurrences of the base table appear with distinct ordinals.
        sales_entries = [e for e in a.scans if e.table == "sales"]
        assert len(sales_entries) == 2
        assert len({e.scan_index for e in sales_entries}) == 2


class TestBuildWorkerPlan:
    def test_scans_renamed_and_structure_preserved(self, sales_db):
        q = (
            sampled(scan(sales_db, "sales"), UniformSpec(0.1, seed=1))
            .join(scan(sales_db, "item"), on=[("s_item", "i_item")])
            .groupby("i_cat")
            .agg(count("n"))
            .build("q")
        )
        a = analyze_plan(q.plan, sales_db)
        worker = build_worker_plan(
            a.split, a.split_scan_ordinals, 0, 4, a.aligned_sampler_addresses
        )

        original = list(a.split.walk())
        rebuilt = list(worker.walk())
        assert [type(n) for n in rebuilt] == [type(n) for n in original]
        worker_scans = [n for n in rebuilt if isinstance(n, Scan)]
        assert sorted(s.table for s in worker_scans) == sorted(
            worker_table_name(i) for i in a.split_scan_ordinals.values()
        )
        for ws, os in zip(worker_scans, (n for n in original if isinstance(n, Scan))):
            assert ws.output_columns() == os.output_columns()

    def test_stateless_sampler_spec_unchanged(self, sales_db):
        spec = UniformSpec(0.1, seed=1)
        q = sampled(scan(sales_db, "sales"), spec).groupby("s_item").agg(count("n")).build("q")
        a = analyze_plan(q.plan, sales_db)
        worker = build_worker_plan(
            a.split, a.split_scan_ordinals, 2, 4, a.aligned_sampler_addresses
        )
        (node,) = [n for n in worker.walk() if isinstance(n, SamplerNode)]
        assert node.spec is spec

    def test_distinct_spec_swapped_per_partition(self, sales_db):
        spec = DistinctSpec(("s_item",), delta=8, p=0.05, seed=5)
        q = sampled(scan(sales_db, "sales"), spec).groupby("s_item").agg(count("n")).build("q")
        a = analyze_plan(q.plan, sales_db)

        aligned = build_worker_plan(
            a.split, a.split_scan_ordinals, 1, 4, a.aligned_sampler_addresses
        )
        (node,) = [n for n in aligned.walk() if isinstance(n, SamplerNode)]
        assert node.spec.delta == spec.delta      # aligned strata: exact delta
        assert node.spec.seed != spec.seed        # fresh per-partition stream

        unaligned = build_worker_plan(a.split, a.split_scan_ordinals, 1, 4, frozenset())
        (node,) = [n for n in unaligned.walk() if isinstance(n, SamplerNode)]
        assert node.spec.delta == 4               # ceil(8/4) + ceil(8/4)
