"""Unit tests for plan analysis (precursor split, strategy choice) and
worker-plan surgery."""

import pytest

from repro.algebra.aggregates import count, sum_
from repro.algebra.builder import from_node, scan
from repro.algebra.expressions import col
from repro.algebra.logical import Aggregate, SamplerNode, Scan
from repro.engine.executor import scan_indices
from repro.parallel import analyze_plan, build_worker_plan
from repro.parallel.plan import worker_table_name
from repro.samplers.distinct import DistinctSpec
from repro.samplers.uniform import UniformSpec


def sampled(builder, spec):
    return from_node(SamplerNode(builder.node, spec))


def analyzed(db, plan, **kwargs):
    return analyze_plan(plan, db, scan_indices(plan), **kwargs)


class TestWorkerTableName:
    def test_zero_padded_per_scan_occurrence(self):
        assert worker_table_name(0) == "__scan000__"
        assert worker_table_name(12) == "__scan012__"


class TestStrategySelection:
    def test_plain_aggregate_round_robins_the_fact_table(self, sales_db):
        plan = scan(sales_db, "sales").groupby("s_item").agg(count("n")).build("q").plan
        a = analyzed(sales_db, plan)
        assert a.ok
        assert a.strategy == "round-robin[sales]"
        assert isinstance(a.aggregate, Aggregate)
        assert a.split is a.aggregate.child
        assert a.partitioned_tables == ("sales",)

    def test_star_join_broadcasts_the_dimension(self, sales_db):
        q = (
            scan(sales_db, "sales")
            .join(scan(sales_db, "item"), on=[("s_item", "i_item")])
            .groupby("i_cat")
            .agg(sum_(col("s_amount"), "total"))
            .build("q")
        )
        a = analyzed(sales_db, q.plan)
        assert a.ok and a.strategy == "round-robin[sales]"
        modes = {e.table: e.mode for e in a.scans}
        assert modes == {"sales": "partition-rr", "item": "broadcast"}

    def test_fact_fact_join_co_partitions_on_keys(self, sales_db):
        q = (
            scan(sales_db, "sales")
            .join(scan(sales_db, "returns"), on=[("s_cust", "r_cust")])
            .groupby("s_item")
            .agg(count("n"))
            .build("q")
        )
        a = analyzed(sales_db, q.plan, min_partition_rows=1_000)
        assert a.ok
        assert a.strategy == "hash[join:s_cust=r_cust]"
        by_table = {e.table: e for e in a.scans}
        assert by_table["sales"].mode == "partition-hash"
        assert by_table["sales"].hash_columns == ("s_cust",)
        assert by_table["returns"].mode == "partition-hash"
        assert by_table["returns"].hash_columns == ("r_cust",)

    def test_distinct_sampler_aligns_hash_with_strata(self, sales_db):
        q = (
            sampled(scan(sales_db, "sales"), DistinctSpec(("s_item",), delta=8, p=0.05, seed=5))
            .groupby("s_item")
            .agg(count("n"))
            .build("q")
        )
        a = analyzed(sales_db, q.plan)
        assert a.ok
        assert a.strategy == "hash[distinct:s_item]"
        (entry,) = a.scans
        assert entry.mode == "partition-hash" and entry.hash_columns == ("s_item",)
        samplers = [n for n in a.split.walk() if isinstance(n, SamplerNode)]
        assert a.aligned_sampler_ids == frozenset({id(samplers[0])})

    def test_no_aggregate_splits_at_the_root(self, sales_db):
        q = sampled(scan(sales_db, "sales"), UniformSpec(0.1, seed=1)).build("q")
        a = analyzed(sales_db, q.plan)
        assert a.ok
        assert a.aggregate is None
        assert a.split is q.plan


class TestFallbackReasons:
    def test_small_input_reports_threshold(self, sales_db):
        plan = scan(sales_db, "sales").groupby("s_item").agg(count("n")).build("q").plan
        a = analyzed(sales_db, plan, min_partition_rows=10**6)
        assert not a.ok
        assert "threshold" in a.reason
        assert a.strategy == "serial-fallback"

    def test_union_all_is_not_partition_pure(self, sales_db):
        q = (
            scan(sales_db, "sales")
            .union_all(scan(sales_db, "sales"))
            .groupby("s_item")
            .agg(count("n"))
            .build("q")
        )
        a = analyzed(sales_db, q.plan)
        assert not a.ok and "not partition-pure" in a.reason

    def test_outer_join_needs_global_view(self, sales_db):
        q = (
            scan(sales_db, "sales")
            .join(scan(sales_db, "returns"), on=[("s_cust", "r_cust")], how="left")
            .groupby("s_item")
            .agg(count("n"))
            .build("q")
        )
        a = analyzed(sales_db, q.plan)
        assert not a.ok and "left-outer join" in a.reason

    def test_shared_scan_object_disables_lineage(self, sales_db):
        plan = scan(sales_db, "sales").groupby("s_item").agg(count("n")).build("q").plan
        a = analyze_plan(plan, sales_db, {})
        assert not a.ok and "ambiguous" in a.reason


class TestBuildWorkerPlan:
    def test_scans_renamed_and_structure_preserved(self, sales_db):
        q = (
            sampled(scan(sales_db, "sales"), UniformSpec(0.1, seed=1))
            .join(scan(sales_db, "item"), on=[("s_item", "i_item")])
            .groupby("i_cat")
            .agg(count("n"))
            .build("q")
        )
        indices = scan_indices(q.plan)
        a = analyze_plan(q.plan, sales_db, indices)
        worker = build_worker_plan(a.split, indices, 0, 4, a.aligned_sampler_ids)

        original = list(a.split.walk())
        rebuilt = list(worker.walk())
        assert [type(n) for n in rebuilt] == [type(n) for n in original]
        worker_scans = [n for n in rebuilt if isinstance(n, Scan)]
        assert sorted(s.table for s in worker_scans) == [
            worker_table_name(indices[id(s)]) for s in original if isinstance(s, Scan)
        ]
        for ws, os in zip(worker_scans, (n for n in original if isinstance(n, Scan))):
            assert ws.output_columns() == os.output_columns()

    def test_stateless_sampler_spec_unchanged(self, sales_db):
        spec = UniformSpec(0.1, seed=1)
        q = sampled(scan(sales_db, "sales"), spec).groupby("s_item").agg(count("n")).build("q")
        indices = scan_indices(q.plan)
        a = analyze_plan(q.plan, sales_db, indices)
        worker = build_worker_plan(a.split, indices, 2, 4, a.aligned_sampler_ids)
        (node,) = [n for n in worker.walk() if isinstance(n, SamplerNode)]
        assert node.spec is spec

    def test_distinct_spec_swapped_per_partition(self, sales_db):
        spec = DistinctSpec(("s_item",), delta=8, p=0.05, seed=5)
        q = sampled(scan(sales_db, "sales"), spec).groupby("s_item").agg(count("n")).build("q")
        indices = scan_indices(q.plan)
        a = analyze_plan(q.plan, sales_db, indices)

        aligned = build_worker_plan(a.split, indices, 1, 4, a.aligned_sampler_ids)
        (node,) = [n for n in aligned.walk() if isinstance(n, SamplerNode)]
        assert node.spec.delta == spec.delta      # aligned strata: exact delta
        assert node.spec.seed != spec.seed        # fresh per-partition stream

        unaligned = build_worker_plan(a.split, indices, 1, 4, frozenset())
        (node,) = [n for n in unaligned.walk() if isinstance(n, SamplerNode)]
        assert node.spec.delta == 4               # ceil(8/4) + ceil(8/4)
