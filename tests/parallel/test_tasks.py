"""Tests for the fault-tolerant task runtime (retries, speculation,
structured failures, pool hardening)."""

import os
import threading
import time

import pytest

from repro.errors import PlanError, TaskCancelled, TaskError
from repro.parallel.pool import WorkerPool, fork_payload
from repro.parallel.tasks import RetryPolicy, TaskRuntime, TaskSpec, task_seed

#: Policy tuned for test speed: fast backoff, eager speculation.
FAST = RetryPolicy(
    backoff_base=0.005, backoff_max=0.05, speculation_min_seconds=0.1, poll_interval=0.005
)


def runtime(mode="inline", workers=None, policy=FAST, seed=0):
    return TaskRuntime(WorkerPool(mode, workers), policy=policy, base_seed=seed)


class TestTaskSeed:
    def test_deterministic(self):
        assert task_seed(1, 2, 3) == task_seed(1, 2, 3)

    def test_distinct_across_attempts_and_partitions(self):
        seeds = {task_seed(7, p, a) for p in range(8) for a in range(4)}
        assert len(seeds) == 32

    def test_positive_63_bit(self):
        s = task_seed(2**62, 10_000, 99)
        assert 0 <= s < 2**63


class TestRetryPolicy:
    def test_rejects_zero_attempts(self):
        with pytest.raises(PlanError):
            RetryPolicy(max_attempts=0)

    def test_rejects_shrinking_backoff(self):
        with pytest.raises(PlanError):
            RetryPolicy(backoff_factor=0.5)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0, backoff_max=0.3)
        waits = [policy.backoff_seconds(f, seed=0) for f in (1, 2, 3, 4)]
        assert waits[0] < waits[1] < waits[2]
        assert all(w <= 0.3 * 1.25 for w in waits)

    def test_jitter_is_deterministic_in_seed(self):
        policy = RetryPolicy()
        assert policy.backoff_seconds(1, seed=42) == policy.backoff_seconds(1, seed=42)
        assert policy.backoff_seconds(1, seed=42) != policy.backoff_seconds(1, seed=43 << 7)


class TestInlineRuntime:
    def test_all_succeed(self):
        report = runtime().run(lambda spec: spec.partition * 10, 4)
        assert report.all_succeeded
        assert report.payloads == [0, 10, 20, 30]
        assert report.total_retries == 0

    def test_retry_then_success(self):
        failed = set()

        def flaky(spec):
            if spec.partition == 2 and spec.partition not in failed:
                failed.add(spec.partition)
                raise RuntimeError("transient")
            return spec.partition

        report = runtime().run(flaky, 4)
        assert report.all_succeeded
        assert report.total_retries == 1
        outcome = report.outcomes[2]
        assert outcome.attempts == 2
        assert outcome.errors[0].partition == 2
        assert outcome.errors[0].attempt == 0

    def test_permanent_failure_reported_not_raised(self):
        def doomed(spec):
            if spec.partition == 1:
                raise ValueError("always")
            return spec.partition

        report = runtime().run(doomed, 3)
        assert report.failed_partitions == (1,)
        outcome = report.outcomes[1]
        assert not outcome.succeeded
        assert outcome.attempts == FAST.max_attempts
        # retries only count re-launches, not the final failure
        assert outcome.retries == FAST.max_attempts - 1
        assert all(isinstance(e, TaskError) for e in outcome.errors)
        assert "[partition 1" in str(outcome.errors[0])

    def test_validation_failure_is_retried(self):
        seen = []

        def work(spec):
            seen.append(spec.attempt)
            return spec.attempt  # attempt 0 "corrupt", attempt 1 fine

        def validate(payload, spec):
            if payload == 0:
                raise ValueError("corrupt payload")

        report = runtime().run(work, 1, validate=validate)
        assert report.all_succeeded
        assert report.outcomes[0].attempts == 2
        assert report.outcomes[0].errors[0].kind == "validation"

    def test_cancelled_attempts_are_not_charged(self):
        calls = []

        def work(spec):
            calls.append(spec.attempt)
            if len(calls) == 1:
                raise TaskCancelled("scheduler asked us to stop")
            return "ok"

        report = runtime().run(work, 1)
        assert report.all_succeeded
        assert report.outcomes[0].errors == []

    def test_deterministic_seeds_per_attempt(self):
        seeds = []
        runtime(seed=9).run(lambda spec: seeds.append(spec.seed), 3)
        again = []
        runtime(seed=9).run(lambda spec: again.append(spec.seed), 3)
        assert seeds == again
        assert len(set(seeds)) == 3


class TestConcurrentRuntime:
    def test_thread_mode_retries(self):
        lock = threading.Lock()
        failed = set()

        def flaky(spec):
            with lock:
                first = spec.partition not in failed
                failed.add(spec.partition)
            if spec.partition in (0, 3) and first:
                raise RuntimeError("transient")
            return spec.partition

        report = runtime("thread", workers=4).run(flaky, 4)
        assert report.all_succeeded
        assert report.payloads == [0, 1, 2, 3]
        assert report.total_retries == 2

    def test_straggler_speculation_first_result_wins(self):
        def slow_first_attempt(spec):
            if spec.partition == 1 and spec.attempt == 0:
                time.sleep(1.0)
            return (spec.partition, spec.attempt)

        start = time.perf_counter()
        report = runtime("thread", workers=5).run(slow_first_attempt, 4)
        elapsed = time.perf_counter() - start
        assert report.all_succeeded
        assert report.speculative_launches >= 1
        assert report.outcomes[1].won_by_speculation
        assert report.payloads[1] == (1, 1)  # the duplicate's attempt won
        assert elapsed < 0.9  # did not wait out the straggler

    def test_speculation_can_be_disabled(self):
        policy = RetryPolicy(
            backoff_base=0.005, speculate=False, speculation_min_seconds=0.05,
            poll_interval=0.005,
        )

        def slow(spec):
            if spec.partition == 0 and spec.attempt == 0:
                time.sleep(0.3)
            return spec.partition

        report = runtime("thread", workers=4, policy=policy).run(slow, 3)
        assert report.all_succeeded
        assert report.speculative_launches == 0

    def test_thread_mode_permanent_failure(self):
        def doomed(spec):
            raise RuntimeError(f"partition {spec.partition} cursed")

        report = runtime("thread", workers=3).run(doomed, 3)
        assert report.failed_partitions == (0, 1, 2)
        for outcome in report.outcomes:
            assert len(outcome.errors) == FAST.max_attempts

    def test_process_mode_retry(self):
        report = runtime("process", workers=2).run(_fail_even_first_attempt, 4)
        assert report.all_succeeded
        assert report.payloads == [0, 1, 2, 3]
        assert report.total_retries == 2


class TestSingleWorkerShortCircuit:
    def test_process_with_one_worker_runs_in_parent(self):
        pids = []
        report = TaskRuntime(WorkerPool("process", 1), policy=FAST).run(
            lambda spec: pids.append(os.getpid()) or spec.partition, 2
        )
        assert report.all_succeeded
        assert pids == [os.getpid()] * 2  # no fork happened

    def test_pool_map_single_worker_inline(self):
        pids = WorkerPool("process", 1).map(lambda _: os.getpid(), range(3))
        assert pids == [os.getpid()] * 3


class TestPoolHardening:
    def test_reentrant_fork_payload_raises(self):
        with fork_payload(lambda x: x):
            with pytest.raises(PlanError, match="re-entrant process-mode"):
                with fork_payload(lambda x: x):
                    pass

    def test_payload_released_after_use(self):
        with fork_payload(lambda x: x):
            pass
        with fork_payload(lambda x: x):  # no residue; lock released
            pass

    def test_reentrant_process_map_raises(self):
        pool = WorkerPool("process", 2)

        def nested(_):
            return WorkerPool("process", 2).map(lambda v: v, [1, 2])

        with pytest.raises(PlanError, match="re-entrant process-mode"):
            with fork_payload(lambda x: x):  # simulate an ongoing process run
                pool.map(nested, [0, 1])

    def test_map_wraps_foreign_exceptions(self):
        def boom(value):
            raise KeyError(value)

        with pytest.raises(TaskError) as info:
            WorkerPool("inline").map(boom, ["a", "b"])
        assert info.value.partition == 0
        assert isinstance(info.value.__cause__, KeyError)

    def test_map_lets_repro_errors_pass_through(self):
        def planned_failure(_):
            raise PlanError("bad plan")

        with pytest.raises(PlanError, match="bad plan"):
            WorkerPool("inline").map(planned_failure, [1])


# Module-level so the process pool's fork image can reach it; keyed on the
# attempt counter so the failure is deterministic across forked children.
def _fail_even_first_attempt(spec: TaskSpec):
    if spec.partition % 2 == 0 and spec.attempt == 0:
        raise RuntimeError("transient even-partition failure")
    return spec.partition
