"""Catalog-backed partition pruning: correctness end to end.

Three bars (DESIGN §14):

* **exact pruning never changes a byte** — every TPC-DS query answers
  bit-identically with pruning on and off, while the selective-predicate
  queries skip most of their fact partitions;
* **a stale catalog can only cost performance** — a partition whose
  summary disagrees with the live data is retained, never pruned;
* **weighted selection stays honest** — fewer partitions run, weights
  are scaled by inverse inclusion probabilities, and the reported
  confidence intervals still cover the exact answer.
"""

import numpy as np
import pytest

from repro.algebra.aggregates import count, sum_
from repro.algebra.builder import from_node, scan
from repro.algebra.expressions import col
from repro.algebra.logical import SamplerNode
from repro.engine.executor import Executor
from repro.parallel import ParallelOptions
from repro.samplers.uniform import UniformSpec
from repro.stats import PartitionCatalog

DEGREE = 8

#: Queries whose predicates/semi-joins actually separate under the date
#: clustering at scale 0.08 — the benchmark's "selective subset".
SELECTIVE = ("q07", "q08", "q09", "q16")


def options(**overrides):
    base = dict(pool="thread", merge="rows", min_partition_rows=1_000)
    base.update(overrides)
    return ParallelOptions(**base)


def assert_bit_identical(a, b):
    assert a.table.column_names == b.table.column_names
    assert a.table.num_rows == b.table.num_rows
    for name in a.table.column_names:
        np.testing.assert_array_equal(a.table.column(name), b.table.column(name), err_msg=name)


@pytest.fixture(scope="module")
def tpcds_executors(tiny_tpcds):
    on = Executor(tiny_tpcds, parallelism=DEGREE, parallel_options=options())
    off = Executor(tiny_tpcds, parallelism=DEGREE, parallel_options=options(prune=False))
    return on, off


@pytest.fixture(scope="module")
def planner(tiny_tpcds):
    from repro.optimizer.planner import QuickrPlanner

    return QuickrPlanner(tiny_tpcds)


class TestExactPruningBitIdentity:
    def test_all_queries_prune_on_equals_prune_off(self, tiny_tpcds, tpcds_executors, planner):
        from repro.workloads.tpcds import queries

        on, off = tpcds_executors
        fired = {}
        for query in queries(tiny_tpcds):
            plan = planner.plan(query).plan
            pruned_run = on.execute(plan)
            full_run = off.execute(plan)
            assert_bit_identical(pruned_run, full_run)
            if full_run.parallel is not None:
                assert full_run.parallel.pruning is None
            info = pruned_run.parallel.pruning if pruned_run.parallel else None
            if info:
                fired[query.name] = info
        assert set(SELECTIVE) <= set(fired), f"pruning fired on {sorted(fired)}"

        skipped = sum(fired[name]["partitions_pruned"] for name in SELECTIVE)
        total = sum(fired[name]["partitions_total"] for name in SELECTIVE)
        assert skipped / total >= 0.40  # the ISSUE's acceptance floor

    def test_prune_decision_is_reported(self, tiny_tpcds, tpcds_executors, planner):
        from repro.workloads.tpcds import query_by_name

        on, _ = tpcds_executors
        result = on.execute(planner.plan(query_by_name(tiny_tpcds, "q08")).plan)
        info = result.parallel.pruning
        assert info["table"] == "store_sales"
        assert info["layout"] == "range-cluster"
        assert info["partitions_executed"] == DEGREE - info["partitions_pruned"]
        assert info["rows_pruned_actual"] == info["rows_pruned_est"]
        assert info["semijoins"]  # q08 prunes through the date_dim semi-join
        assert info["machine_hours_credit"] > 0
        assert result.parallel.strategy == "clustered[store_sales]"

    def test_empty_keep_retains_one_partition_for_schema(
        self, tiny_tpcds, tpcds_executors, planner
    ):
        """q09's year predicate matches nothing at this scale: every
        partition is infeasible, but one is taken back to carry the
        schema through the merge."""
        from repro.workloads.tpcds import query_by_name

        on, off = tpcds_executors
        plan = planner.plan(query_by_name(tiny_tpcds, "q09")).plan
        info = on.execute(plan).parallel.pruning
        assert info["partitions_executed"] == 1
        assert info["partitions_pruned"] == DEGREE - 1


class TestStaleCatalog:
    def test_stale_partition_is_retained_not_pruned(self):
        from repro.optimizer.planner import QuickrPlanner
        from repro.workloads.tpcds import generate_tpcds, query_by_name

        db = generate_tpcds(scale=0.08, seed=3)
        planner = QuickrPlanner(db)
        executor = Executor(db, parallelism=DEGREE, parallel_options=options())
        plan = planner.plan(query_by_name(db, "q08")).plan

        clean = executor.execute(plan)
        clean_info = clean.parallel.pruning
        pruned_before = clean_info["partitions_pruned"]
        assert pruned_before > 0

        # Corrupt each summary in turn until one that the clean run pruned
        # flips to stale-retained (the prune plan does not name the pruned
        # ordinals in its summary dict, so probe for one).
        summaries = db.partition_stats.summaries("store_sales", DEGREE)
        for victim in range(DEGREE):
            summaries[victim].rows += 3
            stale_run = executor.execute(plan)
            info = stale_run.parallel.pruning
            summaries[victim].rows -= 3
            if info["partitions_stale_retained"]:
                assert info["partitions_stale_retained"] == 1
                assert info["partitions_pruned"] <= pruned_before
                assert_bit_identical(stale_run, clean)
                break
        else:
            pytest.fail("no corrupted summary was detected as stale")

    def test_validate_reports_the_corruption(self):
        from repro.workloads.tpcds import generate_tpcds

        db = generate_tpcds(scale=0.08, seed=3)
        db.partition_stats.summaries("store_sales", DEGREE)[1].rows += 3
        problems = db.partition_stats.validate("store_sales")
        assert any("store_sales[1]" in p for p in problems)


@pytest.fixture(scope="module")
def selection_db(sales_db):
    """The conftest star schema with a (round-robin) partition catalog."""
    import copy

    db = copy.copy(sales_db)
    db.partition_stats = PartitionCatalog(db)
    return db


@pytest.fixture(scope="module")
def selection_query(selection_db):
    from repro.core.rewrite import finalize_plan

    built = (
        from_node(SamplerNode(scan(selection_db, "sales").node, UniformSpec(0.2, seed=42)))
        .groupby("s_item")
        .agg(sum_(col("s_amount"), "total"), count("n"))
        .orderby("s_item")
        .build("selection_q")
    )
    # finalize_plan annotates the HT aggregate with compute_ci, as the
    # planner does for every approximable plan.
    return finalize_plan(built.plan)


class TestWeightedSelection:
    def test_fewer_partitions_reported_and_cis_cover_truth(
        self, selection_db, selection_query
    ):
        executor = Executor(
            selection_db,
            parallelism=DEGREE,
            parallel_options=options(selection_fraction=0.5),
        )
        result = executor.execute(selection_query)
        info = result.parallel.pruning
        assert info["partitions_selected"] == info["partitions_executed"]
        assert 0 < info["partitions_executed"] < DEGREE
        assert info["selection_fraction"] == 0.5
        assert 0 < info["inclusion_min"] <= 1.0
        assert result.parallel.strategy == "selected[sales]"

        truth = (
            Executor(selection_db)
            .execute(
                scan(selection_db, "sales")
                .groupby("s_item")
                .agg(sum_(col("s_amount"), "total"))
                .orderby("s_item")
                .build("exact_q")
            )
            .table
        )
        est = result.table
        assert est.num_rows == truth.num_rows
        np.testing.assert_array_equal(est.column("s_item"), truth.column("s_item"))
        covered = (
            np.abs(est.column("total") - truth.column("total"))
            <= est.column("total__ci")
        )
        assert covered.mean() >= 0.8  # 95% CIs; selection must not break them

    def test_selection_is_deterministic_for_a_seed(self, selection_db, selection_query):
        runs = [
            Executor(
                selection_db,
                parallelism=DEGREE,
                parallel_options=options(selection_fraction=0.5, task_seed=9),
            ).execute(selection_query)
            for _ in range(2)
        ]
        assert runs[0].parallel.pruning["token"] == runs[1].parallel.pruning["token"]
        assert_bit_identical(runs[0], runs[1])

    def test_distinct_sampled_plans_are_never_touched(self, selection_db):
        from repro.samplers.distinct import DistinctSpec

        query = (
            from_node(
                SamplerNode(
                    scan(selection_db, "sales").node,
                    DistinctSpec(("s_item",), delta=8, p=0.1, seed=5),
                )
            )
            .groupby("s_item")
            .agg(count("n"))
            .build("distinct_q")
        )
        executor = Executor(
            selection_db,
            parallelism=DEGREE,
            parallel_options=options(selection_fraction=0.5),
        )
        result = executor.execute(query)
        assert result.parallel.pruning is None

    def test_invalid_fraction_rejected(self):
        from repro.errors import PlanError

        with pytest.raises(PlanError):
            ParallelOptions(selection_fraction=1.5)


class TestOptOuts:
    def test_no_catalog_means_no_pruning(self, sales_db, selection_query):
        assert sales_db.partition_stats is None
        result = Executor(
            sales_db, parallelism=DEGREE, parallel_options=options(selection_fraction=0.5)
        ).execute(selection_query)
        assert result.parallel.pruning is None
        assert result.parallel.strategy == "round-robin[sales]"

    def test_prune_false_disables_the_pass(self, selection_db, selection_query):
        result = Executor(
            selection_db, parallelism=DEGREE, parallel_options=options(prune=False)
        ).execute(selection_query)
        assert result.parallel.pruning is None
