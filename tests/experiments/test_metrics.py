"""Unit tests for answer comparison and error metrics."""

import numpy as np
import pytest

from repro.algebra.aggregates import count, max_, sum_
from repro.algebra.builder import scan
from repro.algebra.expressions import col
from repro.engine.table import Table
from repro.experiments.metrics import answer_structure, compare_answers, strip_limit


def answer(groups, values):
    return Table("ans", {"g": np.asarray(groups), "v": np.asarray(values, dtype=float)})


class TestCompareAnswers:
    def test_identical_answers(self):
        exact = answer([1, 2], [10.0, 20.0])
        metrics = compare_answers(exact, exact, ["g"], ["v"])
        assert metrics.groups_missed == 0
        assert metrics.aggregation_error == 0.0

    def test_missed_and_extra_groups(self):
        exact = answer([1, 2, 3], [10, 20, 30])
        approx = answer([1, 4], [10, 40])
        metrics = compare_answers(exact, approx, ["g"], ["v"])
        assert metrics.groups_missed == 2
        assert metrics.extra_groups == 1
        assert metrics.missed_fraction == pytest.approx(2 / 3)

    def test_relative_error(self):
        exact = answer([1], [100.0])
        approx = answer([1], [110.0])
        metrics = compare_answers(exact, approx, ["g"], ["v"])
        assert metrics.aggregation_error == pytest.approx(0.10)
        assert metrics.within(0.15)
        assert not metrics.within(0.05)

    def test_zero_truth_handled(self):
        exact = answer([1], [0.0])
        approx = answer([1], [0.0])
        assert compare_answers(exact, approx, ["g"], ["v"]).aggregation_error == 0.0

    def test_scalar_answers(self):
        exact = Table("a", {"v": np.array([100.0])})
        approx = Table("b", {"v": np.array([90.0])})
        metrics = compare_answers(exact, approx, [], ["v"])
        assert metrics.aggregation_error == pytest.approx(0.10)

    def test_per_aggregate_errors(self):
        exact = Table("a", {"g": np.array([1]), "v": np.array([100.0]), "w": np.array([10.0])})
        approx = Table("b", {"g": np.array([1]), "v": np.array([110.0]), "w": np.array([10.0])})
        metrics = compare_answers(exact, approx, ["g"], ["v", "w"])
        assert metrics.per_aggregate_error["v"] == pytest.approx(0.10)
        assert metrics.per_aggregate_error["w"] == 0.0


class TestPlanHelpers:
    def test_strip_limit(self, sales_db):
        q = (
            scan(sales_db, "sales")
            .groupby("s_item")
            .agg(sum_(col("s_amount"), "rev"))
            .orderby("rev", desc=True)
            .limit(10)
            .build("q")
        )
        from repro.algebra.logical import Aggregate

        assert isinstance(strip_limit(q.plan), Aggregate)

    def test_strip_limit_noop(self, sales_db):
        q = scan(sales_db, "sales").groupby("s_item").agg(count("n")).build("q")
        assert strip_limit(q.plan) is q.plan

    def test_answer_structure(self, sales_db):
        q = (
            scan(sales_db, "sales")
            .groupby("s_item", "s_day")
            .agg(sum_(col("s_amount"), "rev"), count("n"))
            .build("q")
        )
        groups, aggs = answer_structure(q.plan)
        assert groups == ("s_item", "s_day")
        assert aggs == ("rev", "n")

    def test_answer_structure_excludes_min_max(self, sales_db):
        q = (
            scan(sales_db, "sales")
            .groupby("s_item")
            .agg(max_(col("s_amount"), "m"), count("n"))
            .build("q")
        )
        _groups, aggs = answer_structure(q.plan)
        assert aggs == ("n",)
