"""Integration tests for the experiment runner and figure generators."""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentRunner,
    figure2,
    figure8a_performance,
    figure8b_error,
    figure8c_correlation,
    figure9_unrolling,
    table4_qo_times,
    table5_sampler_placement,
    table7_sampler_frequency,
)
from repro.experiments.report import cdf, format_percentile_table, format_table, percentile_row
from repro.workloads.tpcds import query_by_name


@pytest.fixture(scope="module")
def outcomes(tiny_tpcds):
    runner = ExperimentRunner(tiny_tpcds)
    names = ["q02", "q07", "q12", "q15", "q18", "q20"]
    return runner.run_suite([query_by_name(tiny_tpcds, n) for n in names])


class TestRunner:
    def test_outcome_fields(self, outcomes):
        for outcome in outcomes:
            assert outcome.machine_hours_gain > 0
            assert outcome.runtime_gain > 0
            assert outcome.passes_baseline >= 1.0
            assert outcome.qo_time_quickr >= 0

    def test_unapproximable_has_no_samplers(self, outcomes):
        q18 = next(o for o in outcomes if o.name == "q18")
        assert not o_approx(q18)
        assert q18.sampler_count == 0
        assert q18.machine_hours_gain == pytest.approx(1.0)

    def test_full_answer_differs_only_for_limit_queries(self, outcomes):
        q20 = next(o for o in outcomes if o.name == "q20")
        # The full-answer comparison never misses MORE than the limited one.
        assert q20.error_full.groups_missed <= max(1, q20.error.groups_exact)

    def test_summary_keys(self, outcomes):
        for outcome in outcomes:
            summary = outcome.summary()
            assert {"query", "approximable", "samplers", "mh_gain"} <= set(summary)


def o_approx(outcome):
    return outcome.approximable


class TestFigureGenerators:
    def test_figure2(self):
        data = figure2(num_queries=2_000, seed=3)
        assert data["pb_at_half_cluster_time"] < data["total_pb"]
        assert set(data["measured"]) == set(data["paper"])

    def test_table4(self, outcomes):
        data = table4_qo_times(outcomes)
        assert data["baseline_qo_seconds"][50] >= 0
        assert data["quickr_qo_seconds"][50] >= 0

    def test_table5(self, outcomes):
        data = table5_sampler_placement(outcomes)
        assert abs(sum(data["samplers_per_query"].values()) - 1.0) < 1e-9
        assert 0 <= data["unapproximable_fraction"] <= 1

    def test_table7(self, outcomes):
        data = table7_sampler_frequency(outcomes)
        assert set(data["distribution_across_samplers"]) == {"uniform", "distinct", "universe"}

    def test_figure8a(self, outcomes):
        data = figure8a_performance(outcomes)
        assert data["median"]["machine_hours"] >= 1.0
        values, fractions = data["cdf"]["machine_hours"]
        assert len(values) == len(outcomes)

    def test_figure8b(self, outcomes):
        data = figure8b_error(outcomes)
        assert 0 <= data["fraction_within_10pct"] <= 1
        assert data["fraction_no_missed_groups_full"] >= data["fraction_no_missed_groups"] - 1e-9

    def test_figure8c(self, outcomes):
        data = figure8c_correlation(outcomes, num_buckets=3)
        assert len(data["buckets"]) <= 3
        gains = [b["gain_bucket_mean"] for b in data["buckets"]]
        assert gains == sorted(gains)

    def test_figure9(self, tiny_tpcds):
        data = figure9_unrolling(tiny_tpcds, query_by_name(tiny_tpcds, "q12"))
        if data["approximable"] and data["samplers"]:
            assert data["unrolled_kind"] in ("uniform", "distinct", "universe")
            assert data["steps"]


class TestReportHelpers:
    def test_percentile_row(self):
        row = percentile_row([1, 2, 3, 4, 5], (50,))
        assert row[50] == 3.0

    def test_cdf(self):
        values, fractions = cdf([3, 1, 2])
        np.testing.assert_array_equal(values, [1, 2, 3])
        assert fractions[-1] == 1.0

    def test_format_table(self):
        text = format_table([{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}], title="T")
        assert "T" in text and "22" in text

    def test_format_percentile_table(self):
        text = format_percentile_table({"metric1": [1, 2, 3]}, (50,))
        assert "metric1" in text and "50th" in text
