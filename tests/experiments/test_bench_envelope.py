"""Round-trip tests for the unified bench JSON envelope."""

import json

import pytest

from repro.experiments.report import BENCH_SCHEMA, bench_envelope, load_bench


class TestEnvelope:
    def test_shape(self):
        payload = bench_envelope("prune", {"skip": 0.5}, scale=2.0, seed=7)
        assert payload["meta"]["schema"] == BENCH_SCHEMA
        assert payload["meta"]["bench"] == "prune"
        assert payload["meta"]["scale"] == 2.0 and payload["meta"]["seed"] == 7
        assert payload["series"] == {"skip": 0.5}

    def test_meta_none_values_are_dropped(self):
        payload = bench_envelope("transport", {}, degree=None, scale=1.0)
        assert "degree" not in payload["meta"]
        assert payload["meta"]["scale"] == 1.0

    def test_series_not_copied_into_meta(self):
        series = {"runs": [1, 2, 3]}
        payload = bench_envelope("governor", series)
        assert payload["series"] is series


class TestLoadBench:
    def test_enveloped_file_passes_through(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        original = bench_envelope("prune", {"skip": 0.25}, seed=3)
        path.write_text(json.dumps(original))
        loaded = load_bench(str(path))
        assert loaded == original

    def test_legacy_file_is_wrapped(self, tmp_path):
        path = tmp_path / "BENCH_service.json"
        path.write_text(json.dumps({"qps": 10.0, "served": 5}))
        loaded = load_bench(str(path))
        assert loaded["meta"]["schema"] == BENCH_SCHEMA
        assert loaded["meta"]["bench"] == "legacy"
        assert loaded["meta"]["path"].endswith("BENCH_service.json")
        assert loaded["series"] == {"qps": 10.0, "served": 5}

    def test_future_minor_schema_still_passes_through(self, tmp_path):
        path = tmp_path / "BENCH_future.json"
        payload = bench_envelope("x", {"a": 1})
        payload["meta"]["schema"] = "repro-bench/2"
        path.write_text(json.dumps(payload))
        assert load_bench(str(path))["meta"]["schema"] == "repro-bench/2"

    def test_round_trip_through_writers(self, tmp_path):
        # What bench_governor does on its second pass: load, mutate the
        # series, rewrite — the envelope must survive unchanged.
        path = tmp_path / "BENCH_governor.json"
        path.write_text(json.dumps(bench_envelope("governor", {"runs": {}})))
        payload = load_bench(str(path))
        payload["series"]["selection_attribution"] = {"rungs": {}}
        path.write_text(json.dumps(payload))
        again = load_bench(str(path))
        assert again["meta"]["bench"] == "governor"
        assert set(again["series"]) == {"runs", "selection_attribution"}

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_bench(str(tmp_path / "absent.json"))
