"""Tests for the TPC-H and AMPLab-style workloads."""

import pytest

from repro.engine.executor import Executor
from repro.workloads import other, tpch


@pytest.fixture(scope="module")
def tpch_db():
    return tpch.generate_tpch(scale=0.1, seed=4)


@pytest.fixture(scope="module")
def other_db():
    return other.generate_other(scale=0.1, seed=4)


class TestTpch:
    def test_schema(self, tpch_db):
        for table, columns in tpch.TABLE_COLUMNS.items():
            assert set(tpch_db.columns(table)) == set(columns)

    def test_lineitems_reference_orders(self, tpch_db):
        li = tpch_db.table("lineitem")
        assert li.column("l_orderkey").max() < tpch_db.table("orders").num_rows

    def test_every_query_executes(self, tpch_db):
        executor = Executor(tpch_db)
        for query in tpch.queries(tpch_db):
            assert executor.execute(query).table.num_rows >= 0, query.name

    def test_ten_queries(self, tpch_db):
        assert len(tpch.queries(tpch_db)) == 10


class TestOther:
    def test_tables(self, other_db):
        assert "rankings" in other_db and "uservisits" in other_db

    def test_every_query_executes(self, other_db):
        executor = Executor(other_db)
        for query in other.queries(other_db):
            assert executor.execute(query).table.num_rows >= 0, query.name

    def test_queries_are_simpler_than_tpcds(self, other_db, tiny_tpcds):
        """Table 9's contrast: 'Other' queries have fewer joins."""
        from repro.algebra.analysis import count_joins
        from repro.workloads import tpcds

        other_joins = max(count_joins(q.plan) for q in other.queries(other_db))
        tpcds_joins = max(count_joins(q.plan) for q in tpcds.queries(tiny_tpcds))
        assert other_joins < tpcds_joins
