"""Tests for the synthetic production trace (Figure 2 calibration)."""

import numpy as np
import pytest

from repro.workloads.production import (
    PAPER_FIGURE2B,
    generate_trace,
    input_usage_cdf,
    shape_percentiles,
)


@pytest.fixture(scope="module")
def trace():
    return generate_trace(num_queries=5_000, num_inputs=1_000, seed=1)


class TestGeneration:
    def test_trace_size(self, trace):
        assert len(trace.queries) == 5_000
        assert len(trace.input_sizes_pb) == 1_000

    def test_total_input_near_120pb(self, trace):
        assert trace.total_input_pb() == pytest.approx(120.0, rel=0.01)

    def test_deterministic(self):
        a = generate_trace(num_queries=500, num_inputs=100, seed=5)
        b = generate_trace(num_queries=500, num_inputs=100, seed=5)
        assert a.queries[17].operators == b.queries[17].operators

    def test_every_query_touches_inputs(self, trace):
        assert all(q.input_ids for q in trace.queries)


class TestFigure2a:
    def test_cdf_monotone(self, trace):
        pb, hours = input_usage_cdf(trace)
        assert np.all(np.diff(pb) >= 0)
        assert np.all(np.diff(hours) >= -1e-12)
        assert hours[-1] == pytest.approx(1.0)

    def test_heavy_tail(self, trace):
        """Half the cluster time concentrates on a small slice of inputs."""
        pb, hours = input_usage_cdf(trace)
        half_idx = int(np.searchsorted(hours, 0.5))
        assert pb[half_idx] < 0.5 * trace.total_input_pb()


class TestFigure2bCalibration:
    def test_medians_within_factor_two_of_paper(self, trace):
        measured = shape_percentiles(trace)
        for metric in ("passes", "operators", "depth", "joins", "qcs_plus_qvs", "udfs"):
            paper = PAPER_FIGURE2B[metric][50]
            got = measured[metric][50]
            assert paper / 2.2 <= got <= paper * 2.2, (metric, got, paper)

    def test_tails_heavier_than_medians(self, trace):
        measured = shape_percentiles(trace)
        for metric, values in measured.items():
            assert values[95] >= values[50], metric

    def test_complexity_correlation(self, trace):
        """Deep queries should tend to have more joins (shared factor)."""
        depth = np.array([q.depth for q in trace.queries])
        joins = np.array([q.joins for q in trace.queries])
        assert np.corrcoef(depth, joins)[0, 1] > 0.1
