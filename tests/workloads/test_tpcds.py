"""Tests for the TPC-DS workload: schema fidelity, key integrity, queries."""

import numpy as np

from repro.engine.executor import Executor
from repro.workloads.tpcds import (
    EXPECTED_UNAPPROXIMABLE,
    QUERY_BUILDERS,
    TABLE_COLUMNS,
    generate_tpcds,
    queries,
    scaled_rows,
)


class TestSchema:
    def test_all_tables_present(self, tiny_tpcds):
        for table in TABLE_COLUMNS:
            assert table in tiny_tpcds

    def test_columns_match_schema(self, tiny_tpcds):
        for table, columns in TABLE_COLUMNS.items():
            assert set(tiny_tpcds.columns(table)) == set(columns)

    def test_scaled_rows_monotone(self):
        assert scaled_rows("store_sales", 1.0) > scaled_rows("store_sales", 0.1)

    def test_deterministic_generation(self):
        a = generate_tpcds(scale=0.05, seed=9)
        b = generate_tpcds(scale=0.05, seed=9)
        np.testing.assert_array_equal(
            a.table("store_sales").column("ss_item_sk"),
            b.table("store_sales").column("ss_item_sk"),
        )


class TestReferentialIntegrity:
    def test_fact_foreign_keys_resolve(self, tiny_tpcds):
        ss = tiny_tpcds.table("store_sales")
        assert ss.column("ss_item_sk").max() < tiny_tpcds.table("item").num_rows
        assert ss.column("ss_sold_date_sk").max() < tiny_tpcds.table("date_dim").num_rows
        assert ss.column("ss_customer_sk").max() < tiny_tpcds.table("customer").num_rows

    def test_returns_reference_sales(self, tiny_tpcds):
        """Every store return's (ticket, item) exists in store_sales."""
        ss = tiny_tpcds.table("store_sales")
        sr = tiny_tpcds.table("store_returns")
        sale_keys = set(zip(ss.column("ss_ticket_number").tolist(), ss.column("ss_item_sk").tolist()))
        return_keys = set(zip(sr.column("sr_ticket_number").tolist(), sr.column("sr_item_sk").tolist()))
        assert return_keys <= sale_keys

    def test_web_returns_reference_web_sales(self, tiny_tpcds):
        ws = tiny_tpcds.table("web_sales")
        wr = tiny_tpcds.table("web_returns")
        assert set(wr.column("wr_order_number").tolist()) <= set(ws.column("ws_order_number").tolist())

    def test_item_keys_have_heavy_hitters(self, tiny_tpcds):
        """Item popularity is skewed (the catalog must see heavy hitters)."""
        counts = np.bincount(tiny_tpcds.table("store_sales").column("ss_item_sk"))
        assert counts.max() > 3 * np.median(counts[counts > 0])


class TestQuerySuite:
    def test_twenty_four_queries(self, tiny_tpcds):
        assert len(queries(tiny_tpcds)) == 24
        assert len(QUERY_BUILDERS) == 24

    def test_every_query_executes(self, tiny_tpcds):
        executor = Executor(tiny_tpcds)
        for query in queries(tiny_tpcds):
            result = executor.execute(query)
            assert result.table.num_rows >= 0, query.name

    def test_expected_unapproximable_subset_is_valid(self):
        assert EXPECTED_UNAPPROXIMABLE <= set(QUERY_BUILDERS)

    def test_q12_is_figure1_shape(self, tiny_tpcds):
        from repro.algebra.analysis import count_joins

        q12 = QUERY_BUILDERS["q12"](tiny_tpcds)
        assert count_joins(q12.plan) == 4  # three facts + item + date
