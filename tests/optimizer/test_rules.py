"""Unit tests for relational rewrites (select push-down, project pruning)."""


from repro.algebra.aggregates import sum_
from repro.algebra.builder import scan
from repro.algebra.expressions import col
from repro.algebra.logical import Join, Project, Scan, Select
from repro.engine.executor import Executor
from repro.optimizer.rules import (
    fuse_adjacent_selects,
    normalize,
    prune_identity_projects,
    push_selects_down,
    split_conjuncts,
)


class TestSplitConjuncts:
    def test_and_splits(self):
        pred = (col("a") > 1) & (col("b") > 2) & (col("c") > 3)
        assert len(split_conjuncts(pred)) == 3

    def test_or_stays_whole(self):
        pred = (col("a") > 1) | (col("b") > 2)
        assert len(split_conjuncts(pred)) == 1


class TestPushdown:
    def test_select_sinks_below_join(self, sales_db):
        plan = (
            scan(sales_db, "sales")
            .join(scan(sales_db, "item"), on=[("s_item", "i_item")])
            .where(col("i_cat") == 2)
            .node
        )
        pushed = push_selects_down(plan)
        assert isinstance(pushed, Join)
        # The predicate now sits on the item side.
        right = pushed.right
        assert isinstance(right, Select)

    def test_conjuncts_split_across_sides(self, sales_db):
        plan = (
            scan(sales_db, "sales")
            .join(scan(sales_db, "item"), on=[("s_item", "i_item")])
            .where((col("i_cat") == 2) & (col("s_qty") > 5))
            .node
        )
        pushed = push_selects_down(plan)
        assert isinstance(pushed, Join)
        assert isinstance(pushed.left, Select) and isinstance(pushed.right, Select)

    def test_cross_side_predicate_stays_above(self, sales_db):
        plan = (
            scan(sales_db, "sales")
            .join(scan(sales_db, "item"), on=[("s_item", "i_item")])
            .where(col("s_amount") > col("i_price"))
            .node
        )
        pushed = push_selects_down(plan)
        assert isinstance(pushed, Select)

    def test_select_pushes_through_rename(self, sales_db):
        plan = (
            scan(sales_db, "sales")
            .rename(qty="s_qty")
            .where(col("qty") > 5)
            .node
        )
        pushed = push_selects_down(plan)
        assert isinstance(pushed, Project)
        assert isinstance(pushed.child, Select)

    def test_semantics_preserved(self, sales_db):
        q = (
            scan(sales_db, "sales")
            .join(scan(sales_db, "item"), on=[("s_item", "i_item")])
            .where((col("i_cat") == 2) & (col("s_qty") > 5))
            .groupby("s_item")
            .agg(sum_(col("s_amount"), "rev"))
            .build("q")
        )
        ex = Executor(sales_db)
        original = ex.execute(q.plan).table
        rewritten = ex.execute(normalize(q.plan)).table
        a = dict(zip(original.column("s_item").tolist(), original.column("rev").tolist()))
        b = dict(zip(rewritten.column("s_item").tolist(), rewritten.column("rev").tolist()))
        assert a == b


class TestFuseAndPrune:
    def test_adjacent_selects_fused(self, sales_db):
        base = scan(sales_db, "sales").node
        nested = Select(Select(base, col("s_qty") > 2), col("s_day") > 10)
        fused = fuse_adjacent_selects(nested)
        assert isinstance(fused, Select)
        assert not isinstance(fused.child, Select)

    def test_identity_project_removed(self, sales_db):
        base = scan(sales_db, "sales").node
        identity = Project(base, {name: col(name) for name in base.output_columns()})
        assert isinstance(prune_identity_projects(identity), Scan)

    def test_reordering_project_kept(self, sales_db):
        base = scan(sales_db, "sales").node
        cols = list(base.output_columns())
        reordered = Project(base, {name: col(name) for name in reversed(cols)})
        assert isinstance(prune_identity_projects(reordered), Project)
