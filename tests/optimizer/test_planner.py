"""Integration tests for the end-to-end planner."""

import pytest

from repro.engine.executor import Executor
from repro.optimizer.planner import QuickrPlanner
from repro.workloads.tpcds import query_by_name


class TestBaselinePlanning:
    def test_baseline_has_no_samplers(self, tiny_tpcds):
        from repro.algebra.analysis import count_samplers

        planner = QuickrPlanner(tiny_tpcds)
        baseline = planner.plan_baseline(query_by_name(tiny_tpcds, "q01"))
        assert count_samplers(baseline.plan) == 0

    def test_baseline_semantics_match_raw_plan(self, tiny_tpcds):
        planner = QuickrPlanner(tiny_tpcds)
        query = query_by_name(tiny_tpcds, "q07")
        executor = Executor(tiny_tpcds)
        raw = executor.execute(query.plan).table
        optimized = executor.execute(planner.plan_baseline(query).plan).table
        def key(t, i):
            return (t.column("i_category_id")[i], t.column("i_category")[i])
        a = {key(raw, i): raw.column("total")[i] for i in range(raw.num_rows)}
        b = {key(optimized, i): optimized.column("total")[i] for i in range(optimized.num_rows)}
        assert a.keys() == b.keys()
        for group in a:
            assert a[group] == pytest.approx(b[group])

    def test_qo_time_positive(self, tiny_tpcds):
        planner = QuickrPlanner(tiny_tpcds)
        assert planner.plan_baseline(query_by_name(tiny_tpcds, "q01")).qo_time_seconds > 0


class TestQuickrPlanning:
    def test_plan_and_baseline_share_relational_prep(self, tiny_tpcds):
        planner = QuickrPlanner(tiny_tpcds)
        query = query_by_name(tiny_tpcds, "q02")
        result = planner.plan(query)
        baseline = planner.plan_baseline(query)
        from repro.core.dominance import core_of

        if result.approximable:
            # Stripping samplers from the Quickr plan should give a plan over
            # the same relations as the baseline (modulo successor rewrites).
            assert core_of(result.plan).output_columns() == baseline.plan.output_columns()

    def test_reorder_toggle(self, tiny_tpcds):
        query = query_by_name(tiny_tpcds, "q01")
        with_reorder = QuickrPlanner(tiny_tpcds, reorder=True).plan_baseline(query)
        without = QuickrPlanner(tiny_tpcds, reorder=False).plan_baseline(query)
        assert with_reorder.plan.output_columns() == without.plan.output_columns()
