"""Unit tests for cost-based join reordering."""

import pytest

from repro.algebra.aggregates import count, sum_
from repro.algebra.builder import scan
from repro.algebra.expressions import col
from repro.algebra.logical import Join
from repro.engine.executor import Executor
from repro.optimizer.join_order import flatten_join_tree, reorder_joins
from repro.stats.catalog import Catalog
from repro.stats.derivation import StatsDeriver


@pytest.fixture()
def deriver(tiny_tpcds):
    return StatsDeriver(Catalog(tiny_tpcds))


def three_way(db):
    return (
        scan(db, "store_sales")
        .join(scan(db, "item"), on=[("ss_item_sk", "i_item_sk")])
        .join(scan(db, "date_dim"), on=[("ss_sold_date_sk", "d_date_sk")])
        .join(scan(db, "store"), on=[("ss_store_sk", "s_store_sk")])
        .node
    )


class TestFlatten:
    def test_flattens_chain(self, tiny_tpcds):
        flat = flatten_join_tree(three_way(tiny_tpcds))
        assert flat is not None
        leaves, edges = flat
        assert len(leaves) == 4
        assert len(edges) == 3

    def test_two_way_not_reordered(self, tiny_tpcds):
        plan = scan(tiny_tpcds, "store_sales").join(
            scan(tiny_tpcds, "item"), on=[("ss_item_sk", "i_item_sk")]
        ).node
        assert flatten_join_tree(plan) is None

    def test_non_join_returns_none(self, tiny_tpcds):
        assert flatten_join_tree(scan(tiny_tpcds, "item").node) is None


class TestReorder:
    def test_result_is_connected_join_tree(self, tiny_tpcds, deriver):
        reordered = reorder_joins(three_way(tiny_tpcds), deriver)
        assert isinstance(reordered, Join)
        assert set(reordered.output_columns()) == set(three_way(tiny_tpcds).output_columns())

    def test_semantics_preserved(self, tiny_tpcds, deriver):
        plan = three_way(tiny_tpcds)
        from repro.algebra.logical import Aggregate

        def agg(p):
            return Aggregate(p, ("i_category",), [count("n"), sum_(col("ss_net_profit"), "s")])
        ex = Executor(tiny_tpcds)
        original = ex.execute(agg(plan)).table
        reordered = ex.execute(agg(reorder_joins(plan, deriver))).table
        a = dict(zip(original.column("i_category").tolist(), original.column("n").tolist()))
        b = dict(zip(reordered.column("i_category").tolist(), reordered.column("n").tolist()))
        assert a == b

    def test_reorder_inside_larger_plan(self, tiny_tpcds, deriver):
        q = (
            scan(tiny_tpcds, "store_sales")
            .join(scan(tiny_tpcds, "item"), on=[("ss_item_sk", "i_item_sk")])
            .join(scan(tiny_tpcds, "date_dim"), on=[("ss_sold_date_sk", "d_date_sk")])
            .join(scan(tiny_tpcds, "store"), on=[("ss_store_sk", "s_store_sk")])
            .groupby("i_category")
            .agg(count("n"))
            .build("q")
        )
        reordered = reorder_joins(q.plan, deriver)
        assert reordered.output_columns() == q.plan.output_columns()
