"""In-flight governance at the engine layer: tokens, contracts, checkpoints.

The invariants under test:

* a governed execution with generous limits is *bit-identical* to an
  ungoverned one (governance observes, it never perturbs);
* contract violations surface as the typed taxonomy
  (:class:`QueryCancelled` / :class:`DeadlineExceeded` /
  :class:`BudgetExceeded`), never a generic failure or a hang;
* cancellation is honored at the next morsel boundary — the whole point
  of cooperative checkpoints riding the morsel loop.
"""

import threading
import time

import numpy as np
import pytest

from repro.algebra.aggregates import count, sum_
from repro.algebra.builder import from_node, scan
from repro.algebra.expressions import col
from repro.algebra.logical import SamplerNode
from repro.engine.executor import Executor
from repro.engine.governance import CancellationToken, GovernanceContext, table_nbytes
from repro.engine.table import Table
from repro.errors import (
    BudgetExceeded,
    DeadlineExceeded,
    GovernanceError,
    QueryCancelled,
)
from repro.samplers.uniform import UniformSpec


@pytest.fixture(scope="module")
def grouped_query(sales_db):
    return (
        from_node(SamplerNode(scan(sales_db, "sales").node, UniformSpec(0.2, seed=11)))
        .groupby("s_item")
        .agg(sum_(col("s_amount"), "total"), count("n"))
        .orderby("s_item")
        .build("governed_engine")
    )


class TestCancellationToken:
    def test_first_cancel_wins(self):
        token = CancellationToken()
        assert not token.cancelled
        assert token.cancel("client-disconnect")
        assert not token.cancel("shutdown-drain")  # idempotent, first reason kept
        assert token.cancelled
        assert token.reason == "client-disconnect"

    def test_shared_byte_mirrors_event(self):
        token = CancellationToken()
        assert token._shared[0] == 0
        token.cancel("x")
        assert token._shared[0] == 1


class TestGovernanceContext:
    def test_check_passes_when_unbounded(self):
        ctx = GovernanceContext()
        for _ in range(5):
            ctx.check(live_bytes=10**12)
        assert ctx.checks == 5
        assert ctx.peak_live_bytes == 10**12

    def test_cancel_raises_typed_with_reason(self):
        ctx = GovernanceContext()
        ctx.token.cancel("client-disconnect")
        with pytest.raises(QueryCancelled) as info:
            ctx.check()
        assert info.value.reason_code == "client-disconnect"
        assert isinstance(info.value, GovernanceError)

    def test_expired_deadline_raises(self):
        ctx = GovernanceContext(deadline_at=time.monotonic() - 0.01)
        assert ctx.expired()
        with pytest.raises(DeadlineExceeded) as info:
            ctx.check()
        assert info.value.reason_code == "deadline"

    def test_budget_raises_and_tracks_peak(self):
        ctx = GovernanceContext(memory_budget_bytes=100)
        ctx.check(live_bytes=60)
        with pytest.raises(BudgetExceeded) as info:
            ctx.check(live_bytes=101)
        assert info.value.reason_code == "budget"
        assert ctx.peak_live_bytes == 101

    def test_with_timeout_sets_absolute_deadline(self):
        ctx = GovernanceContext.with_timeout(60.0)
        remaining = ctx.remaining_seconds()
        assert 59.0 < remaining <= 60.0
        assert not ctx.should_abort()

    def test_should_abort_is_non_raising(self):
        ctx = GovernanceContext(deadline_at=time.monotonic() - 1.0)
        assert ctx.should_abort()  # no exception
        ctx2 = GovernanceContext()
        ctx2.token.cancel("x")
        assert ctx2.should_abort()


class TestTableNbytes:
    def test_counts_column_buffers(self):
        table = Table("t", {"a": np.arange(10, dtype=np.int64),
                            "b": np.ones(10, dtype=np.float64)})
        assert table_nbytes(table) == 10 * 8 * 2


class TestGovernedSerialExecution:
    def test_governed_run_is_bit_identical(self, sales_db, grouped_query):
        executor = Executor(sales_db)
        plain = executor.execute(grouped_query)
        ctx = GovernanceContext.with_timeout(60.0, memory_budget_bytes=1 << 30)
        governed = executor.execute(grouped_query, governance=ctx)
        assert plain.table.column_names == governed.table.column_names
        for name in plain.table.column_names:
            np.testing.assert_array_equal(
                plain.table.column(name), governed.table.column(name)
            )
        # The morsel/operator loop actually polled the contract.
        assert ctx.checks > 0
        assert ctx.peak_live_bytes > 0

    def test_pre_cancelled_query_never_runs(self, sales_db, grouped_query):
        executor = Executor(sales_db)
        ctx = GovernanceContext()
        ctx.token.cancel("caller-gone")
        with pytest.raises(QueryCancelled):
            executor.execute(grouped_query, governance=ctx)

    def test_expired_deadline_fails_fast(self, sales_db, grouped_query):
        executor = Executor(sales_db)
        ctx = GovernanceContext(deadline_at=time.monotonic() - 0.001)
        t0 = time.perf_counter()
        with pytest.raises(DeadlineExceeded):
            executor.execute(grouped_query, governance=ctx)
        assert time.perf_counter() - t0 < 1.0

    def test_tiny_budget_trips_typed(self, sales_db, grouped_query):
        executor = Executor(sales_db)
        ctx = GovernanceContext(memory_budget_bytes=64)
        with pytest.raises(BudgetExceeded):
            executor.execute(grouped_query, governance=ctx)

    def test_mid_flight_cancel_stops_at_morsel_boundary(self, sales_db, grouped_query):
        # Tiny morsels = many checkpoints; fire the token from another
        # thread and require the unwind within a tight bound. Real work
        # (not sleeps) between checkpoints is what makes the bound honest.
        executor = Executor(sales_db, morsel_rows=256)
        ctx = GovernanceContext()
        fired_at = []

        def fire():
            time.sleep(0.005)
            fired_at.append(time.perf_counter())
            ctx.token.cancel("mid-flight")

        trigger = threading.Thread(target=fire)
        trigger.start()
        with pytest.raises(QueryCancelled):
            while True:  # keep the engine busy until the token lands
                executor.execute(grouped_query, governance=ctx)
        stopped_at = time.perf_counter()
        trigger.join()
        assert stopped_at - fired_at[0] < 0.25  # one morsel boundary, not one query
