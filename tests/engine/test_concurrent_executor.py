"""One shared Executor under many threads: bit-identity + counter sanity.

The query service multiplexes every session onto a single Executor /
PlanCache / MetricsRegistry. These tests pin the properties that makes
safe: concurrent execution returns byte-for-byte the answers a serial
run produces, and the shared bookkeeping stays exact (no lost updates).
"""

import threading

from repro.engine.executor import Executor
from repro.obs.registry import MetricsRegistry
from repro.optimizer.planner import QuickrPlanner
from repro.service.protocol import table_digest
from repro.workloads.tpcds import query_by_name

QUERIES = ("q07", "q12", "q22")
NUM_THREADS = 8
ROUNDS = 3


def serial_digests(db):
    executor = Executor(db)
    planner = QuickrPlanner(db)
    digests = {}
    for name in QUERIES:
        plan = planner.plan(query_by_name(db, name)).plan
        digests[name] = table_digest(executor.execute(plan).table)
    return digests


class TestConcurrentExecutor:
    def _run_threads(self, worker):
        errors = []

        def wrapped(index):
            try:
                worker(index)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=wrapped, args=(i,)) for i in range(NUM_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300.0)
        assert not errors, errors

    def test_concurrent_matches_serial_bit_for_bit(self, tiny_tpcds):
        expected = serial_digests(tiny_tpcds)
        registry = MetricsRegistry()
        executor = Executor(tiny_tpcds, registry=registry)
        planner = QuickrPlanner(tiny_tpcds)
        plans = {
            name: planner.plan(query_by_name(tiny_tpcds, name)).plan
            for name in QUERIES
        }
        observed = []
        lock = threading.Lock()

        def worker(index):
            # Each thread walks the suite from a different offset, so at any
            # moment distinct AND identical plans are in flight together.
            for round_no in range(ROUNDS):
                name = QUERIES[(index + round_no) % len(QUERIES)]
                result = executor.execute(plans[name])
                with lock:
                    observed.append((name, table_digest(result.table)))

        self._run_threads(worker)
        assert len(observed) == NUM_THREADS * ROUNDS
        for name, digest in observed:
            assert digest == expected[name], f"{name} diverged under concurrency"

    def test_shared_counters_stay_exact(self, tiny_tpcds):
        registry = MetricsRegistry()
        executor = Executor(tiny_tpcds, registry=registry)
        planner = QuickrPlanner(tiny_tpcds)
        plan = planner.plan(query_by_name(tiny_tpcds, "q12")).plan

        def worker(index):
            for _ in range(ROUNDS):
                executor.execute(plan)

        self._run_threads(worker)
        total = NUM_THREADS * ROUNDS
        assert registry.value("executor.queries") == total
        stats = executor.plan_cache.stats()
        # Every execute() performs exactly one cache lookup.
        assert stats["hits"] + stats["misses"] == total
        assert stats["hits"] >= total - NUM_THREADS  # at worst one miss per thread
        assert stats["size"] == 1
        timings = executor.snapshot()["timings"]
        assert timings["compile_seconds"] >= 0.0
        assert timings["execute_seconds"] > 0.0

    def test_fresh_stacks_agree_with_shared_stack(self, tiny_tpcds):
        """A private planner+executor per thread gives the same bytes as the
        shared stack — determinism does not depend on isolation."""
        expected = serial_digests(tiny_tpcds)
        observed = []
        lock = threading.Lock()

        def worker(index):
            executor = Executor(tiny_tpcds)
            planner = QuickrPlanner(tiny_tpcds)
            name = QUERIES[index % len(QUERIES)]
            result = executor.execute(planner.plan(query_by_name(tiny_tpcds, name)).plan)
            with lock:
                observed.append((name, table_digest(result.table)))

        self._run_threads(worker)
        for name, digest in observed:
            assert digest == expected[name]
