"""Unit tests for physical operators, including Table 8 weighted semantics."""

import numpy as np
import pytest

from repro.algebra.aggregates import (
    avg,
    count,
    count_distinct,
    count_if,
    max_,
    min_,
    sum_,
    sum_if,
)
from repro.algebra.expressions import col
from repro.engine import operators
from repro.engine.operators import CI_SUFFIX
from repro.engine.table import WEIGHT_COLUMN, Table


def brute_force_join(left, right, lk, rk):
    pairs = []
    for i in range(left.num_rows):
        for j in range(right.num_rows):
            if all(left.column(a)[i] == right.column(b)[j] for a, b in zip(lk, rk)):
                pairs.append((i, j))
    return pairs


class TestSelectProject:
    def test_select(self):
        t = Table("t", {"a": np.array([1, 2, 3])})
        out = operators.execute_select(t, col("a") >= 2)
        np.testing.assert_array_equal(out.column("a"), [2, 3])

    def test_project_computes(self):
        t = Table("t", {"a": np.array([1, 2])})
        out = operators.execute_project(t, {"double": col("a") * 2})
        np.testing.assert_array_equal(out.column("double"), [2, 4])

    def test_project_preserves_weight(self):
        t = Table("t", {"a": np.array([1, 2]), WEIGHT_COLUMN: np.array([3.0, 3.0])})
        out = operators.execute_project(t, {"a": col("a")})
        assert out.has_weights()


class TestJoin:
    def test_inner_matches_brute_force(self, rng):
        left = Table("l", {"k": rng.integers(0, 5, 40), "v": rng.normal(size=40)})
        right = Table("r", {"j": rng.integers(0, 5, 30), "w": rng.normal(size=30)})
        out = operators.execute_join(left, right, ["k"], ["j"])
        assert out.num_rows == len(brute_force_join(left, right, ["k"], ["j"]))

    def test_inner_multi_key(self, rng):
        left = Table("l", {"k1": rng.integers(0, 3, 25), "k2": rng.integers(0, 3, 25)})
        right = Table("r", {"j1": rng.integers(0, 3, 20), "j2": rng.integers(0, 3, 20)})
        out = operators.execute_join(left, right, ["k1", "k2"], ["j1", "j2"])
        assert out.num_rows == len(brute_force_join(left, right, ["k1", "k2"], ["j1", "j2"]))

    def test_no_matches(self):
        left = Table("l", {"k": np.array([1, 2])})
        right = Table("r", {"j": np.array([5, 6])})
        assert operators.execute_join(left, right, ["k"], ["j"]).num_rows == 0

    def test_left_join_keeps_unmatched(self):
        left = Table("l", {"k": np.array([1, 2, 3])})
        right = Table("r", {"j": np.array([1]), "w": np.array([9.0])})
        out = operators.execute_join(left, right, ["k"], ["j"], how="left")
        assert out.num_rows == 3
        assert np.isnan(out.column("w")).sum() == 2

    def test_right_join_keeps_unmatched(self):
        left = Table("l", {"k": np.array([1]), "v": np.array([1.0])})
        right = Table("r", {"j": np.array([1, 2])})
        out = operators.execute_join(left, right, ["k"], ["j"], how="right")
        assert out.num_rows == 2

    def test_weights_multiply(self):
        left = Table("l", {"k": np.array([1]), WEIGHT_COLUMN: np.array([2.0])})
        right = Table("r", {"j": np.array([1]), WEIGHT_COLUMN: np.array([5.0])})
        out = operators.execute_join(left, right, ["k"], ["j"])
        np.testing.assert_array_equal(out.weights(), [10.0])

    def test_one_sided_weight_passes_through(self):
        left = Table("l", {"k": np.array([1, 1]), WEIGHT_COLUMN: np.array([4.0, 4.0])})
        right = Table("r", {"j": np.array([1])})
        out = operators.execute_join(left, right, ["k"], ["j"])
        np.testing.assert_array_equal(out.weights(), [4.0, 4.0])


class TestExactAggregation:
    @pytest.fixture()
    def table(self):
        return Table(
            "t",
            {
                "g": np.array([0, 0, 1, 1, 1]),
                "x": np.array([1.0, 2.0, 3.0, 4.0, 5.0]),
                "c": np.array([1, 1, 1, 2, 2]),
            },
        )

    def test_sum_count_avg(self, table):
        out = operators.execute_aggregate(
            table, ["g"], [sum_(col("x"), "s"), count("n"), avg(col("x"), "m")]
        )
        np.testing.assert_allclose(out.column("s"), [3.0, 12.0])
        np.testing.assert_allclose(out.column("n"), [2.0, 3.0])
        np.testing.assert_allclose(out.column("m"), [1.5, 4.0])

    def test_min_max(self, table):
        out = operators.execute_aggregate(table, ["g"], [min_(col("x"), "lo"), max_(col("x"), "hi")])
        np.testing.assert_allclose(out.column("lo"), [1.0, 3.0])
        np.testing.assert_allclose(out.column("hi"), [2.0, 5.0])

    def test_count_distinct(self, table):
        out = operators.execute_aggregate(table, ["g"], [count_distinct(col("c"), "d")])
        np.testing.assert_allclose(out.column("d"), [1.0, 2.0])

    def test_conditional_aggregates(self, table):
        out = operators.execute_aggregate(
            table,
            ["g"],
            [sum_if(col("x"), col("c") == 2, "s2"), count_if(col("c") == 2, "n2")],
        )
        np.testing.assert_allclose(out.column("s2"), [0.0, 9.0])
        np.testing.assert_allclose(out.column("n2"), [0.0, 2.0])

    def test_scalar_aggregate(self, table):
        out = operators.execute_aggregate(table, [], [sum_(col("x"), "s")])
        assert out.num_rows == 1
        assert out.column("s")[0] == 15.0

    def test_scalar_on_empty_input(self):
        t = Table("t", {"x": np.array([])})
        out = operators.execute_aggregate(t, [], [sum_(col("x"), "s"), avg(col("x"), "m")])
        assert out.column("s")[0] == 0.0
        assert np.isnan(out.column("m")[0])

    def test_groups_in_first_appearance_order(self):
        t = Table("t", {"g": np.array([5, 2, 5, 9]), "x": np.ones(4)})
        out = operators.execute_aggregate(t, ["g"], [count("n")])
        np.testing.assert_array_equal(out.column("g"), [5, 2, 9])

    def test_grouped_on_empty_input_yields_zero_groups(self):
        t = Table("t", {"g": np.array([], dtype=np.int64), "x": np.array([])})
        out = operators.execute_aggregate(t, ["g"], [sum_(col("x"), "s"), count("n")])
        assert out.num_rows == 0
        assert set(out.column_names) == {"g", "s", "n"}


class TestWeightedAggregation:
    """Table 8: estimators over a weighted sample recover true values."""

    def test_sum_weighted(self):
        # A "sample" of half the rows at weight 2 reproduces the full sum.
        t = Table(
            "t",
            {"g": np.array([0, 1]), "x": np.array([1.0, 3.0]), WEIGHT_COLUMN: np.array([2.0, 2.0])},
        )
        out = operators.execute_aggregate(t, ["g"], [sum_(col("x"), "s"), count("n")])
        np.testing.assert_allclose(out.column("s"), [2.0, 6.0])
        np.testing.assert_allclose(out.column("n"), [2.0, 2.0])

    def test_avg_is_ratio_of_weighted(self):
        t = Table(
            "t",
            {"g": np.zeros(2, dtype=int), "x": np.array([1.0, 2.0]), WEIGHT_COLUMN: np.array([1.0, 3.0])},
        )
        out = operators.execute_aggregate(t, ["g"], [avg(col("x"), "m")])
        np.testing.assert_allclose(out.column("m"), [(1 + 6) / 4.0])

    def test_count_distinct_universe_rescale(self):
        t = Table(
            "t",
            {"g": np.zeros(3, dtype=int), "c": np.array([1, 2, 2]), WEIGHT_COLUMN: np.full(3, 4.0)},
        )
        out = operators.execute_aggregate(
            t, ["g"], [count_distinct(col("c"), "d")], universe_rescale={"d": 4.0}
        )
        np.testing.assert_allclose(out.column("d"), [8.0])

    def test_ci_columns_emitted(self):
        t = Table(
            "t",
            {"g": np.zeros(4, dtype=int), "x": np.ones(4), WEIGHT_COLUMN: np.full(4, 2.0)},
        )
        out = operators.execute_aggregate(t, ["g"], [sum_(col("x"), "s")], compute_ci=True)
        assert out.has_column("s" + CI_SUFFIX)
        assert out.column("s" + CI_SUFFIX)[0] > 0

    def test_exact_input_has_zero_ci(self):
        t = Table("t", {"g": np.zeros(4, dtype=int), "x": np.ones(4)})
        out = operators.execute_aggregate(t, ["g"], [sum_(col("x"), "s")], compute_ci=True)
        assert out.column("s" + CI_SUFFIX)[0] == 0.0

    def test_grouped_on_empty_weighted_input(self):
        # A sampler can legitimately return zero rows; the grouped path must
        # produce an empty (not scalar) result with the estimate columns and
        # CI columns present.
        t = Table(
            "t",
            {
                "g": np.array([], dtype=np.int64),
                "x": np.array([]),
                WEIGHT_COLUMN: np.array([]),
            },
        )
        out = operators.execute_aggregate(
            t, ["g"], [sum_(col("x"), "s"), count("n")], compute_ci=True
        )
        assert out.num_rows == 0
        assert out.has_column("s") and out.has_column("n")
        assert out.has_column("s" + CI_SUFFIX) and out.has_column("n" + CI_SUFFIX)

    def test_universe_variance_mode(self):
        # Two universe key values, perfectly correlated rows within a value.
        t = Table(
            "t",
            {
                "g": np.zeros(4, dtype=int),
                "u": np.array([1, 1, 2, 2]),
                "x": np.ones(4),
                WEIGHT_COLUMN: np.full(4, 2.0),
            },
        )
        out = operators.execute_aggregate(
            t,
            ["g"],
            [sum_(col("x"), "s")],
            compute_ci=True,
            universe_variance=(("u",), 0.5),
        )
        # Var = (1-p)/p^2 * sum_g (sum y)^2 = 0.5/0.25 * (4 + 4) = 16 => CI = 1.96*4
        np.testing.assert_allclose(out.column("s" + CI_SUFFIX), [1.96 * 4.0])


class TestOrderLimitUnion:
    def test_orderby_and_limit(self):
        t = Table("t", {"a": np.array([2, 1, 3])})
        out = operators.execute_limit(operators.execute_orderby(t, ["a"], True), 2)
        np.testing.assert_array_equal(out.column("a"), [3, 2])

    def test_union_all_aligns_weights(self):
        a = Table("a", {"x": np.array([1.0])})
        b = Table("b", {"x": np.array([2.0]), WEIGHT_COLUMN: np.array([3.0])})
        out = operators.execute_union_all([a, b])
        np.testing.assert_array_equal(out.weights(), [1.0, 3.0])
