"""Unit tests for the compiled physical plan layer and the plan cache."""

import numpy as np
import pytest

from repro.algebra.aggregates import count, sum_
from repro.algebra.builder import from_node, scan
from repro.algebra.expressions import col, lit
from repro.algebra.logical import Join, SamplerNode, Scan
from repro.engine.executor import Executor
from repro.engine.physical import PlanCache, compile_plan
from repro.engine.table import Table, rowid_column_name
from repro.errors import PlanError
from repro.samplers.uniform import UniformSpec


def star(db):
    return (
        scan(db, "sales")
        .join(scan(db, "item"), on=[("s_item", "i_item")])
        .groupby("i_cat")
        .agg(sum_(col("s_amount"), "total"))
        .build("star")
        .plan
    )


class TestCompile:
    def test_postorder_pipeline(self, sales_db):
        physical = compile_plan(star(sales_db))
        # Root is last; every child slot precedes its consumer.
        assert physical.ops[-1].address == ()
        for op in physical.ops:
            assert all(slot < op.index for slot in op.child_slots)
            assert op.subtree_start <= op.index

    def test_subtree_ranges_are_contiguous(self, sales_db):
        physical = compile_plan(star(sales_db))
        for op in physical.ops:
            covered = {physical.ops[i].address for i in range(op.subtree_start, op.index + 1)}
            # Exactly the addresses prefixed by op.address.
            expected = {
                o.address
                for o in physical.ops
                if o.address[: len(op.address)] == op.address
            }
            assert covered == expected

    def test_scan_lineage_resolved_at_compile_time(self, sales_db):
        physical = compile_plan(star(sales_db))
        scans = [op for op in physical.ops if op.opcode == "scan"]
        assert sorted(op.lineage_column for op in scans) == [
            rowid_column_name(0),
            rowid_column_name(1),
        ]
        off = compile_plan(star(sales_db), attach_rowids=False)
        assert all(op.lineage_column is None for op in off.ops if op.opcode == "scan")

    def test_logical_sampler_spec_rejected(self, sales_db):
        class LogicalOnlySpec:
            def key(self):
                return ("logical", 0.1)

        plan = SamplerNode(scan(sales_db, "sales").node, LogicalOnlySpec())
        with pytest.raises(PlanError, match="logical"):
            compile_plan(plan)


class TestExecute:
    def test_metrics_in_execution_order(self, sales_db):
        physical = compile_plan(star(sales_db))
        _, cards, metrics = physical.execute(sales_db, record_metrics=True)
        assert [m.address for m in metrics] == [op.address for op in physical.ops]
        for m in metrics:
            assert m.rows_out == cards[m.address]
            assert m.seconds >= 0.0
        # Scans read the base table; their rows_in is the base cardinality.
        by_address = {op.address: op for op in physical.ops}
        for m in metrics:
            op = by_address[m.address]
            if op.opcode == "scan":
                assert m.rows_in == sales_db.table(op.node.table).num_rows

    def test_no_metrics_unless_requested(self, sales_db):
        physical = compile_plan(star(sales_db))
        _, _, metrics = physical.execute(sales_db)
        assert metrics == ()

    def test_override_skips_the_subtree(self, sales_db):
        plan = (
            scan(sales_db, "sales")
            .where(col("s_amount") > lit(0))
            .groupby("s_item")
            .agg(count("n"))
            .build("q")
            .plan
        )
        physical = compile_plan(plan)
        spliced = Table(
            "pre",
            {"s_item": np.array([7, 7, 8]), "s_amount": np.array([1.0, 2.0, 3.0])},
        )
        table, cards, _ = physical.execute(sales_db, overrides={(0,): spliced})
        # The scan below the override never ran.
        assert (0, 0) not in cards
        assert cards[(0,)] == 3
        np.testing.assert_array_equal(np.sort(table.column("s_item")), [7, 8])
        np.testing.assert_array_equal(
            table.column("n")[np.argsort(table.column("s_item"))], [2.0, 1.0]
        )

    def test_override_address_must_exist(self, sales_db):
        physical = compile_plan(star(sales_db))
        bogus = Table("x", {"a": np.array([1])})
        with pytest.raises(PlanError, match="override address"):
            physical.execute(sales_db, overrides={(5, 5): bogus})

    def test_matches_executor_answer(self, sales_db):
        plan = star(sales_db)
        table, _, _ = compile_plan(plan).execute(sales_db)
        reference = Executor(sales_db).execute(plan).answer
        stripped = table.drop_lineage()
        assert stripped.column_names == reference.column_names
        for name in reference.column_names:
            np.testing.assert_array_equal(stripped.column(name), reference.column(name))


class TestSelfJoinLineage:
    """Regression: one Scan object referenced twice used to make the old
    per-run ``scan_indices`` walk bail out and silently disable lineage.
    Compilation assigns each occurrence its own ordinal instead."""

    def _plan(self, shared):
        left = (
            from_node(shared)
            .rename(l_item="s_item", l_cust="s_cust", l_amount="s_amount")
            .node
        )
        join = Join(left, shared, ("l_cust",), ("s_cust",))
        return from_node(join).groupby("l_item").agg(count("n")).build("self").plan

    def test_duplicate_scan_gets_two_lineage_columns(self, sales_db):
        shared = Scan("sales", ("s_item", "s_cust", "s_amount"))
        physical = compile_plan(self._plan(shared))
        scans = [op for op in physical.ops if op.opcode == "scan"]
        assert len(scans) == 2
        assert scans[0].node is scans[1].node  # same object, both occurrences
        assert {op.lineage_column for op in scans} == {
            rowid_column_name(0),
            rowid_column_name(1),
        }

    def test_self_join_executes_with_lineage(self, sales_db):
        shared = Scan("sales", ("s_item", "s_cust", "s_amount"))
        result = Executor(sales_db).execute(self._plan(shared))
        assert result.table.num_rows > 0
        # Sampled self-joins keep per-side lineage identity too.
        sampled_left = (
            from_node(SamplerNode(shared, UniformSpec(0.5, seed=3)))
            .rename(l_item="s_item", l_cust="s_cust", l_amount="s_amount")
            .node
        )
        join = Join(sampled_left, shared, ("l_cust",), ("s_cust",))
        plan = from_node(join).groupby("l_item").agg(count("n")).build("self2").plan
        assert Executor(sales_db).execute(plan).table.num_rows > 0


class TestPlanCache:
    def test_hit_miss_eviction_counters(self):
        cache = PlanCache(capacity=2)
        a, b, c = (object(), object(), object())
        assert cache.get("a") is None
        cache.put("a", a)
        cache.put("b", b)
        assert cache.get("a") is a
        cache.put("c", c)  # evicts "b" (LRU; "a" was just touched)
        assert cache.get("b") is None
        assert cache.get("a") is a and cache.get("c") is c
        assert cache.stats() == {
            "size": 2,
            "capacity": 2,
            "hits": 3,
            "misses": 2,
            "evictions": 1,
        }

    def test_capacity_zero_disables(self):
        cache = PlanCache(capacity=0)
        cache.put("a", object())
        assert len(cache) == 0 and cache.get("a") is None

    def test_clear(self):
        cache = PlanCache(capacity=4)
        cache.put("a", object())
        cache.clear()
        assert len(cache) == 0

    def test_concurrent_get_put_keeps_invariants(self):
        import threading

        cache = PlanCache(capacity=8)
        num_threads, iterations = 8, 500
        barrier = threading.Barrier(num_threads)
        errors = []

        def worker(index):
            try:
                barrier.wait()
                for step in range(iterations):
                    key = f"k{(index + step) % 16}"  # 16 keys > capacity: evictions
                    if cache.get(key) is None:
                        cache.put(key, object())
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(num_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = cache.stats()
        # Every loop iteration performs exactly one lookup.
        assert stats["hits"] + stats["misses"] == num_threads * iterations
        assert stats["size"] <= 8
        assert len(cache) == stats["size"]


class TestExecutorCaching:
    def test_repeat_execution_hits(self, sales_db):
        executor = Executor(sales_db)
        first = executor.execute(star(sales_db))
        second = executor.execute(star(sales_db))
        assert not first.plan_cache_hit
        assert second.plan_cache_hit
        for name in first.table.column_names:
            np.testing.assert_array_equal(first.table.column(name), second.table.column(name))
        assert first.cost.machine_hours == second.cost.machine_hours

    def test_commuted_join_reuses_the_compilation(self, sales_db):
        executor = Executor(sales_db)
        ab = (
            scan(sales_db, "sales")
            .join(scan(sales_db, "item"), on=[("s_item", "i_item")])
            .groupby("i_cat")
            .agg(count("n"))
            .build("ab")
            .plan
        )
        ba = (
            scan(sales_db, "item")
            .join(scan(sales_db, "sales"), on=[("i_item", "s_item")])
            .groupby("i_cat")
            .agg(count("n"))
            .build("ba")
            .plan
        )
        executor.execute(ab)
        result = executor.execute(ba)
        assert result.plan_cache_hit
        assert result.table.num_rows > 0

    def test_overrides_require_exact_structure(self, sales_db):
        # run_plan with overrides must not execute a commuted representative:
        # the override addresses refer to the submitted plan's shape.
        executor = Executor(sales_db)
        ab = (
            scan(sales_db, "sales")
            .join(scan(sales_db, "item"), on=[("s_item", "i_item")])
            .groupby("i_cat")
            .agg(count("n"))
            .build("ab")
            .plan
        )
        ba = (
            scan(sales_db, "item")
            .join(scan(sales_db, "sales"), on=[("i_item", "s_item")])
            .groupby("i_cat")
            .agg(count("n"))
            .build("ba")
            .plan
        )
        executor.execute(ab)  # cache now holds ab's compilation
        spliced = Table(
            "pre", {"i_cat": np.array([1, 1, 2]), "s_item": np.array([0, 1, 2])}
        )
        table, cards = executor.run_plan(ba, overrides={(0,): spliced})
        assert cards[(0,)] == 3
        assert int(table.column("n").sum()) == 3

    def test_cache_disabled(self, sales_db):
        executor = Executor(sales_db, plan_cache_size=0)
        executor.execute(star(sales_db))
        result = executor.execute(star(sales_db))
        assert not result.plan_cache_hit
        assert executor.plan_cache.stats()["size"] == 0

    def test_timings_report(self, sales_db):
        executor = Executor(sales_db)
        executor.execute(star(sales_db))
        executor.execute(star(sales_db))
        timings = executor.timings()
        assert timings["compile_seconds"] >= 0.0
        assert timings["execute_seconds"] > 0.0
        assert timings["plan_cache"]["hits"] == 1
        assert timings["plan_cache"]["misses"] == 1
