"""Unit tests for the columnar Table and Database."""

import numpy as np
import pytest

from repro.engine.table import WEIGHT_COLUMN, Database, Table, rowid_column_name
from repro.errors import CatalogError, SchemaError


def make(n=10):
    return Table("t", {"a": np.arange(n), "b": np.arange(n) * 2.0})


class TestConstruction:
    def test_basic(self):
        t = make()
        assert t.num_rows == 10
        assert t.column_names == ("a", "b")

    def test_length_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            Table("t", {"a": np.arange(3), "b": np.arange(4)})

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Table("t", {})

    def test_2d_rejected(self):
        with pytest.raises(SchemaError):
            Table("t", {"a": np.zeros((2, 2))})

    def test_missing_column_raises(self):
        with pytest.raises(SchemaError):
            make().column("zzz")


class TestWeights:
    def test_default_weights_are_ones(self):
        np.testing.assert_array_equal(make(3).weights(), [1.0, 1.0, 1.0])

    def test_weight_column_recognized(self):
        t = make(3).with_columns({WEIGHT_COLUMN: np.array([2.0, 2.0, 2.0])})
        assert t.has_weights()
        assert WEIGHT_COLUMN not in t.data_column_names()

    def test_project_preserves_weights(self):
        t = make(3).with_columns({WEIGHT_COLUMN: np.full(3, 4.0)})
        p = t.project(["a"])
        assert p.has_weights()
        np.testing.assert_array_equal(p.weights(), [4.0, 4.0, 4.0])


class TestRowOps:
    def test_take_mask(self):
        t = make()
        out = t.take(t.column("a") % 2 == 0)
        assert out.num_rows == 5

    def test_take_indices(self):
        out = make().take(np.array([1, 3]))
        np.testing.assert_array_equal(out.column("a"), [1, 3])

    def test_head(self):
        assert make().head(3).num_rows == 3
        assert make(2).head(5).num_rows == 2

    def test_sort_by(self):
        t = Table("t", {"a": np.array([3, 1, 2])})
        np.testing.assert_array_equal(t.sort_by(["a"]).column("a"), [1, 2, 3])
        np.testing.assert_array_equal(t.sort_by(["a"], descending=True).column("a"), [3, 2, 1])

    def test_sort_by_multiple_keys(self):
        t = Table("t", {"a": np.array([1, 1, 0]), "b": np.array([2, 1, 9])})
        out = t.sort_by(["a", "b"])
        np.testing.assert_array_equal(out.column("b"), [9, 1, 2])

    def test_rename_columns(self):
        t = make().rename_columns({"a": "alpha"})
        assert "alpha" in t.column_names


class TestPartitionConcat:
    def test_partition_roundtrip(self):
        t = make(17)
        parts = t.partition(4)
        assert len(parts) == 4
        assert sum(p.num_rows for p in parts) == 17
        merged = Table.concat(parts)
        assert sorted(merged.column("a").tolist()) == list(range(17))

    def test_partition_one(self):
        assert len(make().partition(1)) == 1

    def test_concat_schema_mismatch(self):
        with pytest.raises(SchemaError):
            Table.concat([make(), Table("u", {"x": np.arange(2)})])

    def test_concat_empty_rejected(self):
        with pytest.raises(SchemaError):
            Table.concat([])

    def test_hash_partition_covers_input(self):
        t = Table("t", {"k": np.arange(100) % 7, "v": np.arange(100)})
        parts = t.partition(4, by=["k"])
        assert sum(p.num_rows for p in parts) == 100
        merged = Table.concat([p for p in parts if p.num_rows])
        assert sorted(merged.column("v").tolist()) == list(range(100))

    def test_hash_partition_colocates_equal_keys(self):
        t = Table("t", {"k": np.arange(200) % 13, "v": np.arange(200)})
        assignments = t.partition_assignments(["k"], 4)
        # same key value -> same partition index, always
        for key in range(13):
            assert len(set(assignments[t.column("k") == key].tolist())) == 1

    def test_hash_partition_seed_changes_layout(self):
        t = Table("t", {"k": np.arange(1000)})
        a = t.partition_assignments(["k"], 4, seed=0)
        b = t.partition_assignments(["k"], 4, seed=1)
        assert not np.array_equal(a, b)

    def test_hash_partition_requires_columns(self):
        with pytest.raises(SchemaError):
            make().partition_assignments([], 4)

    def test_partition_preserves_weight_invariant(self):
        gen = np.random.default_rng(0)
        t = Table("t", {"x": gen.normal(size=101)}).with_columns(
            {WEIGHT_COLUMN: gen.uniform(1, 5, 101)}
        )
        total = float((t.weights() * t.column("x")).sum())
        for by in (None, ["x"]):
            parts = t.partition(4, by=by)
            split_total = sum(float((p.weights() * p.column("x")).sum()) for p in parts)
            np.testing.assert_allclose(split_total, total)


class TestLineage:
    def test_lineage_columns_recognized(self):
        t = make(5).with_columns({rowid_column_name(0): np.arange(5)})
        assert t.has_lineage()
        assert t.lineage_column_names() == (rowid_column_name(0),)
        assert rowid_column_name(0) not in t.data_column_names()

    def test_lineage_names_sort_in_scan_order(self):
        names = [rowid_column_name(i) for i in (2, 0, 11, 1)]
        assert sorted(names) == [rowid_column_name(i) for i in (0, 1, 2, 11)]

    def test_project_preserves_lineage(self):
        t = make(4).with_columns({rowid_column_name(1): np.arange(4)})
        assert t.project(["a"]).has_lineage()

    def test_drop_lineage(self):
        t = make(4).with_columns({rowid_column_name(0): np.arange(4)})
        out = t.drop_lineage()
        assert not out.has_lineage()
        assert out.column_names == ("a", "b")

    def test_partition_carries_lineage(self):
        t = make(10).with_columns({rowid_column_name(0): np.arange(10)})
        parts = t.partition(3)
        recovered = np.sort(np.concatenate([p.column(rowid_column_name(0)) for p in parts]))
        np.testing.assert_array_equal(recovered, np.arange(10))


class TestRowsInterface:
    def test_iter_rows(self):
        rows = list(make(3).iter_rows())
        assert rows[0] == (0, 0.0)
        assert len(rows) == 3

    def test_from_rows(self):
        t = Table.from_rows("t", ["a", "b"], [(1, 2.0), (3, 4.0)])
        np.testing.assert_array_equal(t.column("a"), [1, 3])

    def test_from_rows_empty(self):
        t = Table.from_rows("t", ["a"], [])
        assert t.num_rows == 0

    def test_estimated_bytes_positive(self):
        assert make().estimated_bytes() > 0


class TestDatabase:
    def test_register_and_lookup(self):
        db = Database()
        db.register(make())
        assert "t" in db
        assert db.table("t").num_rows == 10
        assert db.columns("t") == ("a", "b")

    def test_missing_table(self):
        with pytest.raises(CatalogError):
            Database().table("nope")

    def test_totals(self):
        db = Database()
        db.register(make())
        assert db.total_rows() == 10
        assert db.total_bytes() > 0
