"""Morsel-driven batch execution: chain discovery, equivalence, metrics.

Consecutive select/project operators form a chain that runs morsel-at-a-
time over fixed row ranges so intermediates stay cache-resident. The bar:
chain discovery finds exactly the fusable runs, and any morsel size yields
the bit-identical result of whole-table execution.
"""

import numpy as np
import pytest

from repro.algebra.aggregates import sum_
from repro.algebra.builder import scan
from repro.algebra.expressions import col
from repro.engine.executor import Executor
from repro.engine.physical import DEFAULT_MORSEL_ROWS, compile_plan
from repro.obs.registry import MetricsRegistry


def chain_plan(db):
    """scan -> where -> where -> derive: a 3-op fusable run above the scan."""
    return (
        scan(db, "sales")
        .where(col("s_amount") > 1.0)
        .where(col("s_day") < 300)
        .derive(doubled=col("s_qty") * 2)
        .build("chain")
        .plan
    )


def run(physical, db, morsel_rows):
    table, cards, metrics = physical.execute(db, record_metrics=True, morsel_rows=morsel_rows)
    return table, metrics


class TestChainDiscovery:
    def test_finds_select_project_run(self, sales_db):
        physical = compile_plan(chain_plan(sales_db))
        assert physical.morsel_chains, "expected at least one fusable chain"
        (start, chain), = physical.morsel_chains.items()
        assert len(chain) >= 2
        assert all(physical.ops[i].opcode in ("select", "project") for i in chain)
        # Chains are maximal runs of consecutive single-child ops.
        assert list(chain) == list(range(chain[0], chain[-1] + 1))

    def test_no_chain_without_consecutive_streamables(self, sales_db):
        plan = (
            scan(sales_db, "sales")
            .groupby("s_item")
            .agg(sum_(col("s_amount"), "total"))
            .build("agg-only")
            .plan
        )
        physical = compile_plan(plan)
        assert physical.morsel_chains == {}

    def test_single_streamable_is_not_a_chain(self, sales_db):
        plan = scan(sales_db, "sales").where(col("s_amount") > 1.0).build("one").plan
        assert compile_plan(plan).morsel_chains == {}


class TestEquivalence:
    @pytest.mark.parametrize("morsel_rows", [97, 1024, DEFAULT_MORSEL_ROWS])
    def test_bit_identical_to_whole_table(self, sales_db, morsel_rows):
        physical = compile_plan(chain_plan(sales_db))
        whole, _ = run(physical, sales_db, morsel_rows=0)  # 0 disables morsels
        morseled, _ = run(physical, sales_db, morsel_rows=morsel_rows)
        assert whole.column_names == morseled.column_names
        assert whole.num_rows == morseled.num_rows
        for c in whole.column_names:
            np.testing.assert_array_equal(whole.column(c), morseled.column(c), err_msg=c)

    def test_chain_skipped_when_input_fits_one_morsel(self, sales_db):
        physical = compile_plan(chain_plan(sales_db))
        _, metrics = run(physical, sales_db, morsel_rows=10**9)
        assert all(m.morsels == 0 for m in metrics)


class TestMetrics:
    def test_per_operator_morsel_counts(self, sales_db):
        physical = compile_plan(chain_plan(sales_db))
        _, metrics = run(physical, sales_db, morsel_rows=997)
        fused = [m for m in metrics if m.morsels > 0]
        assert fused, "chain members should record their morsel count"
        rows = sales_db.table("sales").num_rows
        expected = -(-rows // 997)  # ceil division
        assert {m.morsels for m in fused} == {expected}

    def test_registry_counts_morsels(self, sales_db):
        registry = MetricsRegistry()
        executor = Executor(sales_db, registry=registry, morsel_rows=997)
        query = (
            scan(sales_db, "sales")
            .where(col("s_amount") > 1.0)
            .derive(half=col("s_amount") * 0.5)
            .build("metered")
        )
        executor.execute(query.plan)
        assert registry.counter("memory.morsels_executed").value > 0
        # The executor also refreshes the arena gauges alongside.
        assert registry.gauge("memory.live_segments").value == 0
