"""Refactor acceptance: the compiled iterative executor is observationally
identical to the pre-refactor recursive executor.

``ReferenceExecutor`` below replicates the old execution semantics exactly
(recursive dispatch, per-run ``id(node)``-keyed cardinalities, lineage via a
per-run ``scan_indices`` walk). Every TPC-DS query — both the Baseline plan
and the Quickr (sampled) plan — must produce a bit-identical answer table
and an identical :class:`PlanCost` under the compiled path, serially and at
``parallelism=4``.
"""

import numpy as np
import pytest

from repro.algebra.logical import (
    Aggregate,
    Join,
    Limit,
    LogicalNode,
    OrderBy,
    Project,
    SamplerNode,
    Scan,
    Select,
    UnionAll,
)
from repro.engine import operators
from repro.engine.costmodel import cost_plan
from repro.engine.executor import Executor
from repro.engine.table import rowid_column_name
from repro.optimizer.planner import QuickrPlanner
from repro.parallel import ParallelOptions
from repro.samplers.distinct import DistinctSpec
from repro.workloads.tpcds import QUERY_BUILDERS, query_by_name

QUERY_NAMES = tuple(sorted(QUERY_BUILDERS))


class ReferenceExecutor:
    """The pre-refactor recursive executor, kept verbatim as the oracle."""

    def __init__(self, database, config=None):
        self.database = database
        self.config = config
        self._scan_indices = {}

    @staticmethod
    def scan_indices(plan):
        indices = {}
        for node in plan.walk():
            if isinstance(node, Scan):
                if id(node) in indices:
                    return {}
                indices[id(node)] = len(indices)
        return indices

    def execute(self, plan):
        cardinalities = {}
        self._scan_indices = self.scan_indices(plan)
        table = self._run(plan, cardinalities)
        cost = cost_plan(plan, lambda node, address: cardinalities[id(node)], self.config)
        return table.drop_lineage(), cost, cardinalities

    def _run(self, node, cardinalities):
        table = self._dispatch(node, cardinalities)
        cardinalities[id(node)] = table.num_rows
        return table

    def _dispatch(self, node: LogicalNode, cardinalities):
        if isinstance(node, Scan):
            out = self.database.table(node.table).project(node.output_columns())
            index = self._scan_indices.get(id(node))
            if index is not None and not out.has_lineage():
                out = out.with_columns(
                    {rowid_column_name(index): np.arange(out.num_rows, dtype=np.int64)}
                )
            return out
        if isinstance(node, Select):
            return operators.execute_select(self._run(node.child, cardinalities), node.predicate)
        if isinstance(node, Project):
            return operators.execute_project(self._run(node.child, cardinalities), node.mapping)
        if isinstance(node, SamplerNode):
            return node.spec.apply(self._run(node.child, cardinalities))
        if isinstance(node, Join):
            left = self._run(node.left, cardinalities)
            right = self._run(node.right, cardinalities)
            return operators.execute_join(left, right, node.left_keys, node.right_keys, node.how)
        if isinstance(node, Aggregate):
            return operators.execute_aggregate(
                self._run(node.child, cardinalities),
                node.group_by,
                node.aggs,
                compute_ci=getattr(node, "compute_ci", False),
                universe_rescale=getattr(node, "universe_rescale", None),
                universe_variance=getattr(node, "universe_variance", None),
            )
        if isinstance(node, OrderBy):
            return operators.execute_orderby(
                self._run(node.child, cardinalities), node.keys, node.descending
            )
        if isinstance(node, Limit):
            return operators.execute_limit(self._run(node.child, cardinalities), node.n)
        if isinstance(node, UnionAll):
            return operators.execute_union_all(
                [self._run(child, cardinalities) for child in node.children]
            )
        raise AssertionError(f"reference executor cannot handle {type(node).__name__}")


@pytest.fixture(scope="module")
def planner(tiny_tpcds):
    return QuickrPlanner(tiny_tpcds)


@pytest.fixture(scope="module")
def compiled_executor(tiny_tpcds):
    # One executor for the whole suite: later queries hit the plan cache,
    # so equivalence is asserted for cached compilations too.
    return Executor(tiny_tpcds)


def plans_for(planner, tiny_tpcds, name):
    query = query_by_name(tiny_tpcds, name)
    baseline = planner.plan_baseline(query).plan
    quickr = planner.plan(query).plan
    return {"baseline": baseline, "quickr": quickr}


def assert_tables_bit_identical(reference, compiled, context):
    assert reference.column_names == compiled.column_names, context
    assert reference.num_rows == compiled.num_rows, context
    for column in reference.column_names:
        np.testing.assert_array_equal(
            reference.column(column), compiled.column(column), err_msg=f"{context}:{column}"
        )


def assert_same_rows(reference, compiled, context):
    """Row-order-normalized comparison with floating-point tolerance.

    The parallel merge orders groups by first appearance across partitions
    and two-phase aggregation reassociates sums, so group order and the last
    few bits can legitimately differ from a serial run (they did before this
    refactor too — the compiled parallel path is bit-identical to the
    pre-refactor parallel path, which this tolerance reflects)."""
    assert reference.column_names == compiled.column_names, context
    assert reference.num_rows == compiled.num_rows, context
    ref_order = np.lexsort([reference.column(c) for c in reversed(reference.column_names)])
    got_order = np.lexsort([compiled.column(c) for c in reversed(compiled.column_names)])
    for column in reference.column_names:
        ref = reference.column(column)[ref_order]
        got = compiled.column(column)[got_order]
        if np.issubdtype(ref.dtype, np.floating):
            np.testing.assert_allclose(
                ref, got, rtol=1e-9, atol=1e-12, err_msg=f"{context}:{column}"
            )
        else:
            np.testing.assert_array_equal(ref, got, err_msg=f"{context}:{column}")


@pytest.mark.parametrize("name", QUERY_NAMES)
class TestSerialEquivalence:
    def test_bit_identical_answers_and_costs(self, planner, compiled_executor, tiny_tpcds, name):
        for kind, plan in plans_for(planner, tiny_tpcds, name).items():
            ref_table, ref_cost, ref_cards = ReferenceExecutor(
                tiny_tpcds, compiled_executor.config
            ).execute(plan)
            result = compiled_executor.execute(plan)
            assert_tables_bit_identical(ref_table, result.table, f"{name}/{kind}")
            assert result.cost == ref_cost, f"{name}/{kind}"
            # Same multiset of measured cardinalities, different key space.
            assert sorted(result.cardinalities.values()) == sorted(ref_cards.values())


@pytest.mark.parametrize("name", QUERY_NAMES)
class TestParallelEquivalence:
    def test_parallel_matches_reference(self, planner, compiled_executor, tiny_tpcds, name):
        executor = Executor(
            tiny_tpcds,
            parallelism=4,
            parallel_options=ParallelOptions(pool="inline", min_partition_rows=1_000),
        )
        for kind, plan in plans_for(planner, tiny_tpcds, name).items():
            if any(
                isinstance(n, SamplerNode) and isinstance(n.spec, DistinctSpec)
                for n in plan.walk()
            ):
                # Distinct samplers draw fresh per-partition randomness; the
                # parallel suite covers their stratification guarantee.
                continue
            ref_table, _, _ = ReferenceExecutor(tiny_tpcds, executor.config).execute(plan)
            result = executor.execute(plan)
            if result.parallel is not None and result.parallel.strategy == "serial-fallback":
                assert_tables_bit_identical(ref_table, result.table, f"{name}/{kind}")
            else:
                assert_same_rows(ref_table, result.table, f"{name}/{kind}")
