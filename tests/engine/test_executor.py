"""End-to-end executor tests: exact answers and cost accounting."""

import numpy as np
import pytest

from repro.algebra.aggregates import avg, count, sum_
from repro.algebra.builder import scan
from repro.algebra.expressions import col
from repro.algebra.logical import Aggregate, SamplerNode
from repro.engine.executor import Executor
from repro.errors import PlanError
from repro.samplers.uniform import UniformSpec


class TestExactExecution:
    def test_filter_groupby_matches_numpy(self, sales_db):
        q = (
            scan(sales_db, "sales")
            .where(col("s_qty") > 10)
            .groupby("s_item")
            .agg(sum_(col("s_amount"), "rev"), count("n"))
            .build("q")
        )
        result = Executor(sales_db).execute(q)
        sales = sales_db.table("sales")
        mask = sales.column("s_qty") > 10
        items = sales.column("s_item")[mask]
        amounts = sales.column("s_amount")[mask]
        expected = {i: amounts[items == i].sum() for i in np.unique(items)}
        got = dict(zip(result.table.column("s_item").tolist(), result.table.column("rev").tolist()))
        assert set(got) == set(expected)
        for key, value in expected.items():
            assert got[key] == pytest.approx(value)

    def test_join_aggregate(self, sales_db):
        q = (
            scan(sales_db, "sales")
            .join(scan(sales_db, "item"), on=[("s_item", "i_item")])
            .groupby("i_cat")
            .agg(avg(col("s_amount"), "m"))
            .build("q")
        )
        result = Executor(sales_db).execute(q)
        assert result.table.num_rows == 5  # five categories

    def test_orderby_limit(self, sales_db):
        q = (
            scan(sales_db, "sales")
            .groupby("s_item")
            .agg(sum_(col("s_amount"), "rev"))
            .orderby("rev", desc=True)
            .limit(3)
            .build("q")
        )
        result = Executor(sales_db).execute(q)
        revs = result.table.column("rev")
        assert result.table.num_rows == 3
        assert revs[0] >= revs[1] >= revs[2]

    def test_union_all(self, sales_db):
        a = scan(sales_db, "sales").select("s_item", "s_amount")
        q = a.union_all(scan(sales_db, "sales").select("s_item", "s_amount")).agg(count("n")).build("q")
        result = Executor(sales_db).execute(q)
        assert result.table.column("n")[0] == 2 * sales_db.table("sales").num_rows


class TestCostAccounting:
    def test_cardinalities_recorded_per_node(self, sales_db):
        q = scan(sales_db, "sales").where(col("s_qty") > 10).build("q")
        result = Executor(sales_db).execute(q)
        values = sorted(result.cardinalities.values())
        assert values[-1] == sales_db.table("sales").num_rows

    def test_cost_metrics_positive(self, sales_db):
        q = (
            scan(sales_db, "sales")
            .join(scan(sales_db, "returns"), on=[("s_cust", "r_cust")])
            .groupby("s_item")
            .agg(count("n"))
            .build("q")
        )
        cost = Executor(sales_db).execute(q).cost
        assert cost.machine_hours > 0
        assert cost.runtime > 0
        assert cost.effective_passes >= 1.0
        assert cost.job_input_rows > 0

    def test_sampler_reduces_cost(self, sales_db):
        plan = (
            scan(sales_db, "sales")
            .groupby("s_item")
            .agg(sum_(col("s_amount"), "rev"))
            .build("q")
            .plan
        )
        sampled = Aggregate(
            SamplerNode(plan.child, UniformSpec(0.05, seed=1)), plan.group_by, plan.aggs
        )
        ex = Executor(sales_db)
        assert ex.execute(sampled).cost.machine_hours < ex.execute(plan).cost.machine_hours


class TestSampledExecution:
    def test_uniform_sampled_answer_is_close(self, sales_db):
        plan = (
            scan(sales_db, "sales")
            .groupby("s_item")
            .agg(sum_(col("s_amount"), "rev"))
            .build("q")
            .plan
        )
        sampled = Aggregate(
            SamplerNode(plan.child, UniformSpec(0.2, seed=5)), plan.group_by, plan.aggs
        )
        ex = Executor(sales_db)
        exact = ex.execute(plan).table
        approx = ex.execute(sampled).table
        truth = dict(zip(exact.column("s_item").tolist(), exact.column("rev").tolist()))
        got = dict(zip(approx.column("s_item").tolist(), approx.column("rev").tolist()))
        errors = [abs(got[k] - truth[k]) / truth[k] for k in truth if k in got]
        assert np.median(errors) < 0.2

    def test_logical_state_rejected(self, sales_db):
        from repro.core.sampler_state import SamplerState

        plan = scan(sales_db, "sales").build("q").plan
        bad = SamplerNode(plan, SamplerState())
        with pytest.raises(PlanError):
            Executor(sales_db).execute(bad)
