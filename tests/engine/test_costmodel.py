"""Unit tests for the stage-based cluster cost model."""

import pytest

from repro.algebra.aggregates import count, sum_
from repro.algebra.expressions import col
from repro.algebra.logical import Aggregate, Join, SamplerNode, Scan, Select
from repro.engine.costmodel import cost_plan
from repro.engine.metrics import ClusterConfig
from repro.samplers.uniform import UniformSpec


def rows_oracle(mapping):
    """Cardinality oracle from a {node_key: rows} map."""

    def rows_of(node, address):
        return mapping[node.key()]

    return rows_of


def star_plan(fact_rows, dim_rows, out_groups):
    fact = Scan("fact", ("k", "v"))
    dim = Scan("dim", ("j", "d"))
    join = Join(fact, dim, ["k"], ["j"])
    agg = Aggregate(join, ("d",), [sum_(col("v"), "s")])
    mapping = {
        fact.key(): fact_rows,
        dim.key(): dim_rows,
        join.key(): fact_rows,
        agg.key(): out_groups,
    }
    return agg, mapping


class TestJoinStrategies:
    def test_small_dimension_broadcasts(self):
        config = ClusterConfig(broadcast_threshold=1_000)
        plan, mapping = star_plan(100_000, 100, 20)
        cost = cost_plan(plan, rows_oracle(mapping), config)
        # Broadcast join: the fact side never re-shuffles, so shuffled rows
        # are only the broadcast dimension plus the aggregate re-partition.
        assert cost.shuffled_rows < 10_000

    def test_large_side_shuffles(self):
        config = ClusterConfig(broadcast_threshold=1_000)
        plan, mapping = star_plan(100_000, 50_000, 20)
        cost = cost_plan(plan, rows_oracle(mapping), config)
        assert cost.shuffled_rows > 100_000

    def test_shuffle_join_adds_a_pass(self):
        config = ClusterConfig(broadcast_threshold=1_000)
        broadcast_plan, m1 = star_plan(100_000, 100, 20)
        shuffle_plan, m2 = star_plan(100_000, 50_000, 20)
        passes_broadcast = cost_plan(broadcast_plan, rows_oracle(m1), config).effective_passes
        passes_shuffle = cost_plan(shuffle_plan, rows_oracle(m2), config).effective_passes
        assert passes_shuffle > passes_broadcast


class TestSamplerEffects:
    def _sampled_star(self, p):
        fact = Scan("fact", ("k", "v"))
        sampler = SamplerNode(fact, UniformSpec(p, seed=0))
        dim = Scan("dim", ("j", "d"))
        join = Join(sampler, dim, ["k"], ["j"])
        agg = Aggregate(join, ("d",), [sum_(col("v"), "s")])
        sampled_rows = int(100_000 * p)
        mapping = {
            fact.key(): 100_000,
            sampler.key(): sampled_rows,
            dim.key(): 100,
            join.key(): sampled_rows,
            agg.key(): 20,
        }
        return agg, mapping

    def test_sampler_lowers_machine_hours(self):
        config = ClusterConfig()
        baseline, m0 = star_plan(100_000, 100, 20)
        sampled, m1 = self._sampled_star(0.01)
        assert (
            cost_plan(sampled, rows_oracle(m1), config).machine_hours
            < cost_plan(baseline, rows_oracle(m0), config).machine_hours
        )

    def test_sampler_kind_recorded_with_distance_zero(self):
        sampled, mapping = self._sampled_star(0.1)
        cost = cost_plan(sampled, rows_oracle(mapping))
        assert cost.sampler_source_distances() == [0]

    def test_sampler_above_shuffle_join_has_distance_one(self):
        fact = Scan("fact", ("k", "v"))
        other = Scan("other", ("j", "w"))
        join = Join(fact, other, ["k"], ["j"])
        sampler = SamplerNode(join, UniformSpec(0.1, seed=0))
        agg = Aggregate(sampler, (), [count("n")])
        mapping = {
            fact.key(): 100_000,
            other.key(): 100_000,
            join.key(): 150_000,
            sampler.key(): 15_000,
            agg.key(): 1,
        }
        cost = cost_plan(agg, rows_oracle(mapping))
        assert cost.sampler_source_distances() == [1]


class TestPassAccounting:
    def test_single_scan_aggregate_is_about_one_pass(self):
        scan_node = Scan("t", ("a",))
        agg = Aggregate(scan_node, ("a",), [count("n")])
        mapping = {scan_node.key(): 100_000, agg.key(): 10}
        cost = cost_plan(agg, rows_oracle(mapping))
        assert cost.effective_passes == pytest.approx(1.0, rel=0.2)

    def test_total_over_first_pass_at_least_one(self):
        plan, mapping = star_plan(100_000, 50_000, 20)
        assert cost_plan(plan, rows_oracle(mapping)).total_over_first_pass() >= 1.0

    def test_dop_reduction_after_small_rows(self):
        config = ClusterConfig(rows_per_task=1_000, max_dop=64)
        assert config.dop_for_rows(100_000) == 64
        assert config.dop_for_rows(500) == 1
        assert config.dop_for_rows(0) == 1


class TestStageStructure:
    def test_select_is_pipelined(self):
        scan_node = Scan("t", ("a",))
        select = Select(scan_node, col("a") > 0)
        agg = Aggregate(select, (), [count("n")])
        mapping = {scan_node.key(): 50_000, select.key(): 25_000, agg.key(): 1}
        cost = cost_plan(agg, rows_oracle(mapping))
        # scan+select+partial-agg fuse into one stage; final agg is another.
        assert len(cost.stages) == 2

    def test_summary_keys(self):
        plan, mapping = star_plan(10_000, 10, 4)
        summary = cost_plan(plan, rows_oracle(mapping)).summary()
        for key in ("machine_hours", "runtime", "shuffled_rows", "intermediate_rows", "effective_passes", "stages"):
            assert key in summary
