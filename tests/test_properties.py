"""Property-based tests (hypothesis) for the core invariants.

These encode the paper's formal guarantees as machine-checked properties:

* Horvitz-Thompson unbiasedness of all three samplers for SUM/COUNT;
* the distinct sampler's stratification guarantee for *every* input;
* exact sample-then-join == join-then-sample for the universe sampler;
* heavy-hitter sketch error bounds;
* weighted aggregation recovers exact answers when weights are 1.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.aggregates import count, sum_
from repro.algebra.expressions import col
from repro.engine import operators
from repro.engine.table import WEIGHT_COLUMN, Table
from repro.samplers.distinct import DistinctSpec
from repro.samplers.uniform import UniformSpec
from repro.samplers.universe import UniverseSpec
from repro.sketches.heavy_hitters import LossyCounter

SETTINGS = dict(max_examples=25, deadline=None)


@st.composite
def keyed_table(draw, max_rows=400, max_keys=20):
    n = draw(st.integers(min_value=1, max_value=max_rows))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    n_keys = draw(st.integers(min_value=1, max_value=max_keys))
    rng = np.random.default_rng(seed)
    return Table(
        "t",
        {
            "k": rng.integers(0, n_keys, n),
            "x": np.round(rng.normal(5.0, 2.0, n), 3),
        },
    )


class TestSamplerInvariants:
    @given(table=keyed_table(), p=st.sampled_from([0.1, 0.3, 0.7]), seed=st.integers(0, 1000))
    @settings(**SETTINGS)
    def test_uniform_weights_constant(self, table, p, seed):
        out = UniformSpec(p, seed=seed).apply(table)
        assert out.num_rows <= table.num_rows
        if out.num_rows:
            assert np.allclose(out.weights(), 1.0 / p)

    @given(table=keyed_table(), p=st.sampled_from([0.2, 0.5]), seed=st.integers(0, 1000))
    @settings(**SETTINGS)
    def test_universe_is_key_closed(self, table, p, seed):
        """Every kept key keeps ALL of its rows (subspace semantics)."""
        out = UniverseSpec(["k"], p, seed=seed).apply(table)
        kept = np.unique(out.column("k"))
        for key in kept:
            assert (out.column("k") == key).sum() == (table.column("k") == key).sum()

    @given(
        table=keyed_table(),
        delta=st.integers(1, 8),
        p=st.sampled_from([0.05, 0.2]),
        seed=st.integers(0, 1000),
    )
    @settings(**SETTINGS)
    def test_distinct_stratification_guarantee(self, table, delta, p, seed):
        """For every input whatsoever: >= min(delta, freq) rows per stratum."""
        out = DistinctSpec(["k"], delta=delta, p=p, seed=seed).apply(table)
        keys, frequencies = np.unique(table.column("k"), return_counts=True)
        for key, freq in zip(keys, frequencies):
            kept = (out.column("k") == key).sum()
            assert kept >= min(delta, freq)

    @given(table=keyed_table(max_rows=200), seed=st.integers(0, 500))
    @settings(**SETTINGS)
    def test_universe_join_commutes_with_sampling(self, table, seed):
        """join(sample(L), sample(R)) == sample(join(L, R)) exactly."""
        p = 0.4
        right = Table("r", {"j": table.column("k").copy(), "y": table.column("x") * 2})
        sampled_then_joined = operators.execute_join(
            UniverseSpec(["k"], p, seed=seed).apply(table),
            UniverseSpec(["j"], p, seed=seed, emit_weight=False).apply(right),
            ["k"],
            ["j"],
        )
        joined_then_sampled = UniverseSpec(["k"], p, seed=seed).apply(
            operators.execute_join(table, right, ["k"], ["j"])
        )
        assert sampled_then_joined.num_rows == joined_then_sampled.num_rows


class TestEstimatorInvariants:
    @given(table=keyed_table())
    @settings(**SETTINGS)
    def test_weight_one_aggregation_is_exact(self, table):
        weighted = table.with_columns({WEIGHT_COLUMN: np.ones(table.num_rows)})
        exact = operators.execute_aggregate(table, ["k"], [sum_(col("x"), "s"), count("n")])
        from_weighted = operators.execute_aggregate(weighted, ["k"], [sum_(col("x"), "s"), count("n")])
        np.testing.assert_allclose(exact.column("s"), from_weighted.column("s"))
        np.testing.assert_allclose(exact.column("n"), from_weighted.column("n"))

    @given(table=keyed_table(), factor=st.sampled_from([2.0, 5.0]))
    @settings(**SETTINGS)
    def test_ht_estimate_scales_with_weight(self, table, factor):
        weighted = table.with_columns({WEIGHT_COLUMN: np.full(table.num_rows, factor)})
        out = operators.execute_aggregate(weighted, [], [count("n")])
        assert out.column("n")[0] == pytest.approx(table.num_rows * factor)

    @given(table=keyed_table())
    @settings(**SETTINGS)
    def test_ci_nonnegative(self, table):
        weighted = table.with_columns({WEIGHT_COLUMN: np.full(table.num_rows, 3.0)})
        out = operators.execute_aggregate(
            weighted, ["k"], [sum_(col("x"), "s")], compute_ci=True
        )
        assert np.all(out.column("s__ci") >= 0)


class TestSketchInvariants:
    @given(
        seed=st.integers(0, 1000),
        heavy_fraction=st.sampled_from([0.05, 0.1, 0.2]),
    )
    @settings(**SETTINGS)
    def test_lossy_counter_never_misses_heavies(self, seed, heavy_fraction):
        rng = np.random.default_rng(seed)
        n = 5_000
        n_heavy = int(n * heavy_fraction)
        stream = np.concatenate([np.full(n_heavy, -1), rng.integers(0, 1_000, n - n_heavy)])
        rng.shuffle(stream)
        sketch = LossyCounter(tau=1e-3, support=heavy_fraction / 2)
        sketch.add_many(stream.tolist())
        assert -1 in {value for value, _ in sketch.heavy_hitters()}

    @given(seed=st.integers(0, 1000))
    @settings(**SETTINGS)
    def test_lossy_counter_underestimates_boundedly(self, seed):
        rng = np.random.default_rng(seed)
        stream = rng.integers(0, 50, 2_000)
        sketch = LossyCounter(tau=1e-2, support=5e-2)
        sketch.add_many(stream.tolist())
        truth = np.bincount(stream, minlength=50)
        for value in range(50):
            estimate = sketch.estimate(value)
            assert estimate <= truth[value]
            assert estimate >= truth[value] - sketch.tau * len(stream) - 1


class TestExpressionInvariants:
    @given(table=keyed_table(), shift=st.integers(-5, 5))
    @settings(**SETTINGS)
    def test_predicate_partition(self, table, shift):
        """A predicate and its negation partition the rows."""
        pred = col("x") > float(shift)
        yes = operators.execute_select(table, pred)
        no = operators.execute_select(table, ~pred)
        assert yes.num_rows + no.num_rows == table.num_rows

    @given(table=keyed_table())
    @settings(**SETTINGS)
    def test_rename_is_semantic_noop(self, table):
        expr = (col("x") + 1) * 2
        renamed = expr.rename({"x": "y"})
        retable = Table("t", {"y": table.column("x")})
        np.testing.assert_allclose(expr.evaluate(table), renamed.evaluate(retable))
