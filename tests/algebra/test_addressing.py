"""Unit tests for stable node addresses and canonical plan fingerprints."""

import pytest

from repro.algebra.addressing import (
    format_address,
    node_at,
    parse_address,
    plan_fingerprint,
    scan_ordinals,
    walk_with_addresses,
)
from repro.algebra.aggregates import count, sum_
from repro.algebra.builder import from_node, scan
from repro.algebra.expressions import col, lit
from repro.algebra.logical import Join, SamplerNode, Scan, Select
from repro.errors import PlanError
from repro.samplers.uniform import UniformSpec


def star(db):
    return (
        scan(db, "sales")
        .join(scan(db, "item"), on=[("s_item", "i_item")])
        .groupby("i_cat")
        .agg(sum_(col("s_amount"), "total"))
        .build("star")
        .plan
    )


class TestAddresses:
    def test_preorder_paths(self, sales_db):
        plan = star(sales_db)
        addressed = list(walk_with_addresses(plan))
        assert addressed[0] == ((), plan)
        by_address = dict(addressed)
        assert by_address[(0,)] is plan.children[0]
        assert by_address[(0, 0)] is plan.children[0].children[0]
        # addresses are unique even though traversal can revisit objects
        assert len({a for a, _ in addressed}) == len(addressed)

    def test_prefix_offsets_subtree_walks(self, sales_db):
        plan = star(sales_db)
        join = plan.children[0]
        relative = dict(walk_with_addresses(join))
        absolute = dict(walk_with_addresses(join, (0,)))
        assert set(absolute) == {(0,) + a for a in relative}

    def test_node_at_roundtrip(self, sales_db):
        plan = star(sales_db)
        for address, node in walk_with_addresses(plan):
            assert node_at(plan, address) is node

    def test_node_at_rejects_bad_address(self, sales_db):
        with pytest.raises(PlanError):
            node_at(star(sales_db), (9, 9))

    def test_format_and_parse(self):
        assert format_address(()) == "r"
        assert format_address((0, 1, 2)) == "r.0.1.2"
        assert parse_address("r") == ()
        assert parse_address("r.0.1.2") == (0, 1, 2)
        with pytest.raises(PlanError):
            parse_address("x.1")
        with pytest.raises(PlanError):
            parse_address("r.one")

    def test_scan_ordinals_distinguish_shared_objects(self):
        shared = Scan("t", ("a", "b"))
        renamed = from_node(shared).rename(x="a", y="b").node
        join = Join(renamed, shared, ("x",), ("a",))
        ordinals = scan_ordinals(join)
        assert len(ordinals) == 2
        assert sorted(ordinals.values()) == [0, 1]


class TestFingerprints:
    def test_deterministic_and_structural(self, sales_db):
        a, b = star(sales_db), star(sales_db)
        assert a is not b
        assert plan_fingerprint(a) == plan_fingerprint(b)

    def test_sampler_parameters_change_the_fingerprint(self, sales_db):
        base = scan(sales_db, "sales").node
        p1 = SamplerNode(base, UniformSpec(0.1, seed=1))
        p2 = SamplerNode(base, UniformSpec(0.1, seed=2))
        p3 = SamplerNode(base, UniformSpec(0.2, seed=1))
        prints = {plan_fingerprint(p) for p in (p1, p2, p3)}
        assert len(prints) == 3

    def test_inner_join_commutes(self, sales_db):
        left = scan(sales_db, "sales")
        right = scan(sales_db, "item")
        ab = left.join(right, on=[("s_item", "i_item")]).node
        ba = right.join(left, on=[("i_item", "s_item")]).node
        assert ab.key() != ba.key()  # structural keys are order-sensitive
        assert plan_fingerprint(ab) == plan_fingerprint(ba)

    def test_outer_join_does_not_commute(self, sales_db):
        left = scan(sales_db, "sales")
        right = scan(sales_db, "returns")
        lr = left.join(right, on=[("s_cust", "r_cust")], how="left").node
        rl = right.join(left, on=[("r_cust", "s_cust")], how="right").node
        assert plan_fingerprint(lr) != plan_fingerprint(rl)

    def test_conjunct_order_is_canonicalized(self, sales_db):
        base = scan(sales_db, "sales").node
        p = (col("s_amount") > lit(10)) & (col("s_qty") > lit(2))
        q = (col("s_qty") > lit(2)) & (col("s_amount") > lit(10))
        assert plan_fingerprint(Select(base, p)) == plan_fingerprint(Select(base, q))

    def test_commutative_arithmetic_is_canonicalized(self, sales_db):
        base = scan(sales_db, "sales").node
        p = Select(base, (col("s_amount") * col("s_qty")) > lit(5))
        q = Select(base, (col("s_qty") * col("s_amount")) > lit(5))
        assert plan_fingerprint(p) == plan_fingerprint(q)
        # subtraction is not commutative
        p = Select(base, (col("s_amount") - col("s_qty")) > lit(5))
        q = Select(base, (col("s_qty") - col("s_amount")) > lit(5))
        assert plan_fingerprint(p) != plan_fingerprint(q)

    def test_group_by_order_matters(self, sales_db):
        a = scan(sales_db, "sales").groupby("s_item", "s_day").agg(count("n")).node
        b = scan(sales_db, "sales").groupby("s_day", "s_item").agg(count("n")).node
        assert plan_fingerprint(a) != plan_fingerprint(b)

    def test_memoized_on_the_node(self, sales_db):
        plan = star(sales_db)
        first = plan_fingerprint(plan)
        assert plan_fingerprint(plan) is first  # cached string, not recomputed
