"""Unit tests for the scalar expression AST."""

import numpy as np
import pytest

from repro.algebra.expressions import And, BinOp, Col, Func, IfThenElse, Lit, col, ensure_expr, lit
from repro.engine.table import Table
from repro.errors import ExpressionError


@pytest.fixture()
def table():
    return Table("t", {"a": np.array([1, 2, 3, 4]), "b": np.array([10.0, 20.0, 30.0, 40.0])})


class TestColumnsAndLiterals:
    def test_col_reads_column(self, table):
        np.testing.assert_array_equal(col("a").evaluate(table), [1, 2, 3, 4])

    def test_col_columns(self):
        assert col("a").columns() == frozenset({"a"})

    def test_lit_broadcasts(self, table):
        np.testing.assert_array_equal(lit(5).evaluate(table), [5, 5, 5, 5])

    def test_lit_has_no_columns(self):
        assert lit(3).columns() == frozenset()

    def test_empty_column_name_rejected(self):
        with pytest.raises(ExpressionError):
            Col("")

    def test_rename(self, table):
        renamed = col("a").rename({"a": "b"})
        np.testing.assert_array_equal(renamed.evaluate(table), table.column("b"))


class TestArithmetic:
    def test_add_sub_mul(self, table):
        expr = (col("a") + 1) * 2 - col("a")
        np.testing.assert_array_equal(expr.evaluate(table), [3, 4, 5, 6])

    def test_right_hand_operators(self, table):
        np.testing.assert_array_equal((10 - col("a")).evaluate(table), [9, 8, 7, 6])
        np.testing.assert_array_equal((2 * col("a")).evaluate(table), [2, 4, 6, 8])

    def test_division_by_zero_yields_nan(self):
        t = Table("t", {"x": np.array([1.0, 2.0]), "z": np.array([0.0, 2.0])})
        result = (col("x") / col("z")).evaluate(t)
        assert np.isnan(result[0]) and result[1] == 1.0

    def test_mod(self, table):
        np.testing.assert_array_equal((col("a") % 2).evaluate(table), [1, 0, 1, 0])

    def test_unknown_operator_rejected(self):
        with pytest.raises(ExpressionError):
            BinOp("**", col("a"), lit(2))

    def test_columns_union(self):
        assert (col("a") + col("b")).columns() == frozenset({"a", "b"})


class TestComparisonsAndBooleans:
    def test_all_comparison_ops(self, table):
        assert list((col("a") == 2).evaluate(table)) == [False, True, False, False]
        assert list((col("a") != 2).evaluate(table)) == [True, False, True, True]
        assert list((col("a") < 2).evaluate(table)) == [True, False, False, False]
        assert list((col("a") <= 2).evaluate(table)) == [True, True, False, False]
        assert list((col("a") > 3).evaluate(table)) == [False, False, False, True]
        assert list((col("a") >= 3).evaluate(table)) == [False, False, True, True]

    def test_and_or_not(self, table):
        expr = (col("a") > 1) & (col("a") < 4)
        assert list(expr.evaluate(table)) == [False, True, True, False]
        expr = (col("a") == 1) | (col("a") == 4)
        assert list(expr.evaluate(table)) == [True, False, False, True]
        assert list((~(col("a") == 1)).evaluate(table)) == [False, True, True, True]

    def test_and_conjuncts_flatten(self):
        expr = And(And(col("a") > 1, col("b") > 2), col("a") < 5)
        assert len(expr.conjuncts()) == 3

    def test_isin(self, table):
        assert list(col("a").isin([2, 4]).evaluate(table)) == [False, True, False, True]

    def test_isin_columns(self):
        assert col("a").isin([1]).columns() == frozenset({"a"})


class TestFuncAndConditional:
    def test_udf_evaluates(self, table):
        double = Func("double", lambda x: x * 2, [col("a")])
        np.testing.assert_array_equal(double.evaluate(table), [2, 4, 6, 8])

    def test_udf_columns(self, table):
        f = Func("f", lambda x, y: x + y, [col("a"), col("b")])
        assert f.columns() == frozenset({"a", "b"})

    def test_udf_identity_by_name_and_args(self):
        f1 = Func("f", lambda x: x, [col("a")])
        f2 = Func("f", lambda x: x + 1, [col("a")])  # same name => same key
        assert f1.key() == f2.key()

    def test_if_then_else(self, table):
        expr = IfThenElse(col("a") > 2, col("b"), lit(0))
        np.testing.assert_array_equal(expr.evaluate(table), [0, 0, 30.0, 40.0])

    def test_if_then_else_columns(self):
        expr = IfThenElse(col("a") > 2, col("b"), lit(0))
        assert expr.columns() == frozenset({"a", "b"})


class TestStructuralIdentity:
    def test_key_stable(self):
        assert (col("a") + 1).key() == (col("a") + 1).key()

    def test_key_distinguishes(self):
        assert (col("a") + 1).key() != (col("a") + 2).key()

    def test_equals_helper(self):
        assert (col("a") + 1).equals(col("a") + 1)
        assert not (col("a") + 1).equals(col("a") - 1)

    def test_hashable(self):
        assert len({col("a"), col("a"), col("b")}) == 2


class TestCoercion:
    def test_ensure_expr_passthrough(self):
        e = col("a")
        assert ensure_expr(e) is e

    def test_ensure_expr_literals(self):
        assert isinstance(ensure_expr(3), Lit)
        assert isinstance(ensure_expr(3.5), Lit)
        assert isinstance(ensure_expr("x"), Lit)
        assert isinstance(ensure_expr(True), Lit)

    def test_ensure_expr_rejects_junk(self):
        with pytest.raises(ExpressionError):
            ensure_expr(object())
