"""Unit tests for the fluent query builder."""

import pytest

from repro.algebra.aggregates import count, sum_
from repro.algebra.builder import Query, from_node, scan
from repro.algebra.expressions import col
from repro.algebra.logical import Aggregate, Join, Limit, OrderBy, Select, UnionAll
from repro.errors import PlanError, SchemaError


class TestScanResolution:
    def test_scan_from_database(self, sales_db):
        builder = scan(sales_db, "sales")
        assert set(builder.output_columns()) == {"s_item", "s_cust", "s_day", "s_qty", "s_amount"}

    def test_scan_from_dict(self):
        builder = scan({"t": ["a", "b"]}, "t")
        assert builder.output_columns() == ("a", "b")

    def test_scan_bad_source(self):
        with pytest.raises(PlanError):
            scan(42, "t")


class TestRowOperators:
    def test_where(self, sales_db):
        node = scan(sales_db, "sales").where(col("s_qty") > 5).node
        assert isinstance(node, Select)

    def test_select_subset(self, sales_db):
        builder = scan(sales_db, "sales").select("s_item", "s_amount")
        assert builder.output_columns() == ("s_item", "s_amount")

    def test_derive_extends(self, sales_db):
        builder = scan(sales_db, "sales").derive(total=col("s_qty") * col("s_amount"))
        assert "total" in builder.output_columns()
        assert "s_item" in builder.output_columns()

    def test_derive_duplicate_rejected(self, sales_db):
        with pytest.raises(SchemaError):
            scan(sales_db, "sales").derive(s_qty=col("s_amount"))

    def test_rename(self, sales_db):
        builder = scan(sales_db, "sales").rename(qty="s_qty")
        assert "qty" in builder.output_columns()
        assert "s_qty" not in builder.output_columns()

    def test_drop(self, sales_db):
        builder = scan(sales_db, "sales").drop("s_day", "s_qty")
        assert set(builder.output_columns()) == {"s_item", "s_cust", "s_amount"}

    def test_drop_everything_rejected(self, sales_db):
        cols = scan(sales_db, "sales").output_columns()
        with pytest.raises(PlanError):
            scan(sales_db, "sales").drop(*cols)


class TestMultiInput:
    def test_join(self, sales_db):
        builder = scan(sales_db, "sales").join(scan(sales_db, "item"), on=[("s_item", "i_item")])
        assert isinstance(builder.node, Join)
        assert "i_cat" in builder.output_columns()

    def test_union_all(self, sales_db):
        a = scan(sales_db, "sales").select("s_item", "s_amount")
        b = scan(sales_db, "sales").select("s_item", "s_amount")
        assert isinstance(a.union_all(b).node, UnionAll)


class TestAggregation:
    def test_groupby_agg(self, sales_db):
        builder = scan(sales_db, "sales").groupby("s_item").agg(sum_(col("s_amount"), "rev"))
        assert isinstance(builder.node, Aggregate)
        assert builder.output_columns() == ("s_item", "rev")

    def test_scalar_agg(self, sales_db):
        builder = scan(sales_db, "sales").agg(count("n"))
        assert builder.output_columns() == ("n",)


class TestFinish:
    def test_orderby_limit_build(self, sales_db):
        query = (
            scan(sales_db, "sales")
            .groupby("s_item")
            .agg(sum_(col("s_amount"), "rev"))
            .orderby("rev", desc=True)
            .limit(5)
            .build("top5")
        )
        assert isinstance(query, Query)
        assert isinstance(query.plan, Limit)
        assert isinstance(query.plan.child, OrderBy)
        assert query.name == "top5"

    def test_from_node_roundtrip(self, sales_db):
        node = scan(sales_db, "sales").node
        assert from_node(node).node is node
