"""Unit tests for logical plan nodes: schema derivation and invariants."""

import pytest

from repro.algebra.aggregates import count, sum_
from repro.algebra.expressions import col
from repro.algebra.logical import (
    Aggregate,
    Join,
    Limit,
    OrderBy,
    Project,
    SamplerNode,
    Scan,
    Select,
    UnionAll,
)
from repro.core.sampler_state import SamplerState
from repro.errors import PlanError, SchemaError


def scan_t():
    return Scan("t", ("a", "b", "c"))


def scan_u():
    return Scan("u", ("x", "y"))


class TestScan:
    def test_output_columns(self):
        assert scan_t().output_columns() == ("a", "b", "c")

    def test_requires_columns(self):
        with pytest.raises(PlanError):
            Scan("t", ())

    def test_no_children(self):
        with pytest.raises(PlanError):
            scan_t().with_children([scan_u()])


class TestSelect:
    def test_passthrough_schema(self):
        node = Select(scan_t(), col("a") > 1)
        assert node.output_columns() == ("a", "b", "c")

    def test_unknown_column_rejected(self):
        with pytest.raises(SchemaError):
            Select(scan_t(), col("zz") > 1)

    def test_with_children(self):
        node = Select(scan_t(), col("a") > 1)
        rebuilt = node.with_children([scan_t()])
        assert rebuilt.key() == node.key()


class TestProject:
    def test_output_is_mapping_keys(self):
        node = Project(scan_t(), {"a2": col("a"), "s": col("a") + col("b")})
        assert node.output_columns() == ("a2", "s")

    def test_empty_mapping_rejected(self):
        with pytest.raises(PlanError):
            Project(scan_t(), {})

    def test_unknown_input_rejected(self):
        with pytest.raises(SchemaError):
            Project(scan_t(), {"q": col("nope")})

    def test_identity_passthrough(self):
        node = Project(scan_t(), {"a2": col("a"), "s": col("a") + col("b")})
        assert node.identity_passthrough() == {"a2": "a"}


class TestJoin:
    def test_schema_concatenates(self):
        node = Join(scan_t(), scan_u(), ["a"], ["x"])
        assert node.output_columns() == ("a", "b", "c", "x", "y")

    def test_full_outer_rejected(self):
        with pytest.raises(PlanError):
            Join(scan_t(), scan_u(), ["a"], ["x"], how="full")

    def test_key_count_mismatch(self):
        with pytest.raises(PlanError):
            Join(scan_t(), scan_u(), ["a", "b"], ["x"])

    def test_missing_key_rejected(self):
        with pytest.raises(SchemaError):
            Join(scan_t(), scan_u(), ["nope"], ["x"])

    def test_column_collision_rejected(self):
        with pytest.raises(SchemaError):
            Join(scan_t(), Scan("t2", ("a", "z")), ["a"], ["z"])

    def test_key_mappings(self):
        node = Join(scan_t(), scan_u(), ["a", "b"], ["x", "y"])
        assert node.key_mapping_left_to_right() == {"a": "x", "b": "y"}
        assert node.key_mapping_right_to_left() == {"x": "a", "y": "b"}


class TestAggregate:
    def test_schema(self):
        node = Aggregate(scan_t(), ("a",), [sum_(col("b"), "total"), count("n")])
        assert node.output_columns() == ("a", "total", "n")

    def test_scalar_aggregate(self):
        node = Aggregate(scan_t(), (), [count("n")])
        assert node.output_columns() == ("n",)

    def test_needs_aggs(self):
        with pytest.raises(PlanError):
            Aggregate(scan_t(), ("a",), [])

    def test_alias_collision_with_group(self):
        with pytest.raises(PlanError):
            Aggregate(scan_t(), ("a",), [count("a")])

    def test_duplicate_aliases(self):
        with pytest.raises(PlanError):
            Aggregate(scan_t(), (), [count("n"), sum_(col("b"), "n")])

    def test_unknown_group_column(self):
        with pytest.raises(SchemaError):
            Aggregate(scan_t(), ("zz",), [count("n")])


class TestOrderLimitUnion:
    def test_orderby_schema(self):
        node = OrderBy(scan_t(), ("a",), descending=True)
        assert node.output_columns() == ("a", "b", "c")
        assert node.descending

    def test_orderby_needs_keys(self):
        with pytest.raises(PlanError):
            OrderBy(scan_t(), ())

    def test_limit_positive(self):
        with pytest.raises(PlanError):
            Limit(scan_t(), 0)

    def test_union_schema_match(self):
        node = UnionAll([scan_t(), Scan("t2", ("a", "b", "c"))])
        assert node.output_columns() == ("a", "b", "c")

    def test_union_schema_mismatch(self):
        with pytest.raises(SchemaError):
            UnionAll([scan_t(), scan_u()])

    def test_union_needs_two(self):
        with pytest.raises(PlanError):
            UnionAll([scan_t()])


class TestSamplerNode:
    def test_holds_state(self):
        state = SamplerState(strat_cols=frozenset({"a"}))
        node = SamplerNode(scan_t(), state)
        assert node.output_columns() == ("a", "b", "c")
        assert node.spec is state

    def test_spec_needs_key(self):
        with pytest.raises(PlanError):
            SamplerNode(scan_t(), object())


class TestTreeHelpers:
    def test_walk_and_counts(self):
        plan = Aggregate(
            Select(Join(scan_t(), scan_u(), ["a"], ["x"]), col("b") > 0),
            ("a",),
            [count("n")],
        )
        kinds = [type(n).__name__ for n in plan.walk()]
        assert kinds[0] == "Aggregate"
        assert plan.num_operators() == 5
        assert plan.depth() == 4

    def test_key_identity_for_equal_plans(self):
        p1 = Select(scan_t(), col("a") > 1)
        p2 = Select(scan_t(), col("a") > 1)
        assert p1.key() == p2.key()
