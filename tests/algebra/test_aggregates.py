"""Unit tests for aggregate specifications."""

import pytest

from repro.algebra.aggregates import (
    AggKind,
    AggSpec,
    avg,
    count,
    count_distinct,
    count_if,
    max_,
    min_,
    sum_,
    sum_if,
)
from repro.algebra.expressions import col
from repro.errors import ExpressionError


class TestConstruction:
    def test_sum(self):
        spec = sum_(col("x"), "total")
        assert spec.kind is AggKind.SUM and spec.alias == "total"

    def test_count_needs_no_expr(self):
        assert count("n").expr is None

    def test_sum_requires_expr(self):
        with pytest.raises(ExpressionError):
            AggSpec(AggKind.SUM, "t")

    def test_sum_if_requires_condition(self):
        with pytest.raises(ExpressionError):
            AggSpec(AggKind.SUM_IF, "t", col("x"))

    def test_count_if_requires_condition(self):
        with pytest.raises(ExpressionError):
            AggSpec(AggKind.COUNT_IF, "t")

    def test_count_distinct_requires_expr(self):
        with pytest.raises(ExpressionError):
            AggSpec(AggKind.COUNT_DISTINCT, "t")


class TestColumnSets:
    def test_value_columns(self):
        assert sum_(col("x") + col("y"), "t").value_columns() == frozenset({"x", "y"})

    def test_condition_columns(self):
        spec = sum_if(col("x"), col("flag") == 1, "t")
        assert spec.condition_columns() == frozenset({"flag"})
        assert spec.columns() == frozenset({"x", "flag"})

    def test_count_has_no_columns(self):
        assert count("n").columns() == frozenset()


class TestSampleability:
    def test_sampleable_kinds(self):
        assert sum_(col("x"), "a").is_sampleable()
        assert count("a").is_sampleable()
        assert avg(col("x"), "a").is_sampleable()
        assert count_distinct(col("x"), "a").is_sampleable()
        assert sum_if(col("x"), col("x") > 0, "a").is_sampleable()
        assert count_if(col("x") > 0, "a").is_sampleable()

    def test_min_max_not_sampleable(self):
        assert not min_(col("x"), "a").is_sampleable()
        assert not max_(col("x"), "a").is_sampleable()


class TestRenameAndKey:
    def test_rename(self):
        spec = sum_if(col("x"), col("f") == 1, "t").rename({"x": "y", "f": "g"})
        assert spec.value_columns() == frozenset({"y"})
        assert spec.condition_columns() == frozenset({"g"})

    def test_key_roundtrip(self):
        a = sum_(col("x"), "t")
        b = sum_(col("x"), "t")
        assert a.key() == b.key()
        assert a.key() != count("t").key()
