"""Unit tests for plan introspection (QCS/QVS, shape statistics)."""

from repro.algebra.aggregates import count, count_distinct, sum_, sum_if
from repro.algebra.analysis import (
    base_tables,
    count_aggregation_ops,
    count_joins,
    count_operators,
    count_samplers,
    count_udfs,
    plan_shape_stats,
    query_column_set,
    query_value_set,
)
from repro.algebra.builder import scan
from repro.algebra.expressions import Func, col


def simple_query(db):
    return (
        scan(db, "sales")
        .join(scan(db, "item"), on=[("s_item", "i_item")])
        .where(col("i_cat") == 2)
        .groupby("i_cat")
        .agg(sum_(col("s_amount"), "rev"))
        .build("q")
    )


class TestCounts:
    def test_operator_count(self, sales_db):
        q = simple_query(sales_db)
        assert count_operators(q.plan) == 5  # agg, select, join, 2 scans

    def test_join_count(self, sales_db):
        assert count_joins(simple_query(sales_db).plan) == 1

    def test_aggregation_ops_counts_specs(self, sales_db):
        q = (
            scan(sales_db, "sales")
            .groupby("s_item")
            .agg(sum_(col("s_amount"), "a"), count("b"))
            .build("q")
        )
        assert count_aggregation_ops(q.plan) == 2

    def test_sampler_count_zero(self, sales_db):
        assert count_samplers(simple_query(sales_db).plan) == 0

    def test_base_tables(self, sales_db):
        assert base_tables(simple_query(sales_db).plan) == {"sales", "item"}


class TestUdfCounting:
    def test_udf_in_projection(self, sales_db):
        f = Func("squash", lambda x: x * 0.5, [col("s_amount")])
        q = (
            scan(sales_db, "sales")
            .derive(half=f)
            .groupby("s_item")
            .agg(sum_(col("half"), "rev"))
            .build("q")
        )
        assert count_udfs(q.plan) >= 1

    def test_no_udfs(self, sales_db):
        assert count_udfs(simple_query(sales_db).plan) == 0


class TestQcsQvs:
    def test_simple_qcs_matches_paper_example(self, sales_db):
        # SELECT X, SUM(Y) WHERE Z > 30 has QCS {X, Z}, QVS {Y}.
        q = (
            scan(sales_db, "sales")
            .where(col("s_qty") > 3)
            .groupby("s_item")
            .agg(sum_(col("s_amount"), "rev"))
            .build("q")
        )
        assert query_column_set(q.plan) == frozenset({"s_item", "s_qty"})
        assert query_value_set(q.plan) == frozenset({"s_amount"})

    def test_join_keys_in_qcs(self, sales_db):
        qcs = query_column_set(simple_query(sales_db).plan)
        assert {"s_item", "i_item", "i_cat"} <= qcs

    def test_derived_columns_resolve_to_base(self, sales_db):
        q = (
            scan(sales_db, "sales")
            .derive(total=col("s_qty") * col("s_amount"))
            .groupby("s_item")
            .agg(sum_(col("total"), "rev"))
            .build("q")
        )
        assert query_value_set(q.plan) == frozenset({"s_qty", "s_amount"})

    def test_if_condition_in_qcs(self, sales_db):
        q = (
            scan(sales_db, "sales")
            .groupby("s_item")
            .agg(sum_if(col("s_amount"), col("s_day") > 180, "late_rev"))
            .build("q")
        )
        assert "s_day" in query_column_set(q.plan)
        assert query_value_set(q.plan) == frozenset({"s_amount"})

    def test_count_distinct_contributes_to_qvs(self, sales_db):
        q = (
            scan(sales_db, "sales")
            .groupby("s_item")
            .agg(count_distinct(col("s_cust"), "uniq"))
            .build("q")
        )
        assert "s_cust" in query_value_set(q.plan)


class TestShapeStats:
    def test_all_keys_present(self, sales_db):
        stats = plan_shape_stats(simple_query(sales_db).plan)
        for key in ("operators", "depth", "joins", "aggregation_ops", "udfs", "qcs_size", "qvs_size", "qcs_plus_qvs"):
            assert key in stats

    def test_qcs_plus_qvs_is_union_size(self, sales_db):
        plan = simple_query(sales_db).plan
        stats = plan_shape_stats(plan)
        union = query_column_set(plan) | query_value_set(plan)
        assert stats["qcs_plus_qvs"] == len(union)
