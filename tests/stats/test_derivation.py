"""Unit tests for statistics derivation through plan operators."""

import pytest

from repro.algebra.aggregates import count
from repro.algebra.builder import scan
from repro.algebra.expressions import col
from repro.algebra.logical import SamplerNode
from repro.samplers.distinct import DistinctSpec
from repro.samplers.uniform import UniformSpec
from repro.stats.catalog import Catalog
from repro.stats.derivation import StatsDeriver, estimate_selectivity


@pytest.fixture()
def deriver(sales_db):
    return StatsDeriver(Catalog(sales_db))


class TestScanAndSelect:
    def test_scan_rows(self, sales_db, deriver):
        node = scan(sales_db, "sales").node
        assert deriver.stats_for(node).rows == sales_db.table("sales").num_rows

    def test_equality_selectivity(self, sales_db, deriver):
        node = scan(sales_db, "sales").where(col("s_item") == 3).node
        stats = deriver.stats_for(node)
        assert stats.rows == pytest.approx(20_000 / 40, rel=0.6)

    def test_range_selectivity_uses_min_max(self, sales_db, deriver):
        node = scan(sales_db, "sales").where(col("s_day") < 73).node
        # s_day uniform over [0, 365): roughly 20% pass.
        assert deriver.stats_for(node).rows == pytest.approx(4_000, rel=0.3)

    def test_conjunction_multiplies(self, sales_db, deriver):
        base = scan(sales_db, "sales")
        one = deriver.stats_for(base.where(col("s_item") == 3).node).rows
        both = deriver.stats_for(
            base.where((col("s_item") == 3) & (col("s_day") < 73)).node
        ).rows
        assert both < one

    def test_isin_selectivity(self, sales_db, deriver):
        node = scan(sales_db, "sales").where(col("s_item").isin([1, 2, 3, 4])).node
        assert deriver.stats_for(node).rows == pytest.approx(2_000, rel=0.4)


class TestJoinsAndAggregates:
    def test_fk_join_preserves_fact_cardinality(self, sales_db, deriver):
        node = scan(sales_db, "sales").join(scan(sales_db, "item"), on=[("s_item", "i_item")]).node
        assert deriver.stats_for(node).rows == pytest.approx(20_000, rel=0.05)

    def test_aggregate_rows_equal_groups(self, sales_db, deriver):
        node = scan(sales_db, "sales").groupby("s_item").agg(count("n")).node
        assert deriver.stats_for(node).rows == 40

    def test_aggregate_groups_capped_by_rows(self, sales_db, deriver):
        node = scan(sales_db, "sales").groupby("s_cust", "s_day", "s_item").agg(count("n")).node
        assert deriver.stats_for(node).rows <= 20_000

    def test_limit_caps_rows(self, sales_db, deriver):
        node = scan(sales_db, "sales").limit(10).node
        assert deriver.stats_for(node).rows == 10


class TestDistinctEstimates:
    def test_single_column_exact(self, sales_db, deriver):
        stats = deriver.stats_for(scan(sales_db, "sales").node)
        assert stats.distinct(["s_item"]) == 40

    def test_cross_table_product(self, sales_db, deriver):
        node = scan(sales_db, "sales").join(scan(sales_db, "item"), on=[("s_item", "i_item")]).node
        stats = deriver.stats_for(node)
        # i_cat has 5 values, s_day 365: independence product.
        assert stats.distinct_independent(["i_cat", "s_day"]) == pytest.approx(5 * 365, rel=0.01)

    def test_distinct_uncapped_by_rows(self, sales_db, deriver):
        stats = deriver.stats_for(scan(sales_db, "sales").node)
        product = stats.distinct_independent(["s_cust", "s_day", "s_item"])
        assert product > 20_000  # 500 * 365 * 40 >> rows

    def test_lineage_through_project(self, sales_db, deriver):
        node = scan(sales_db, "sales").derive(double=col("s_amount") * 2).node
        stats = deriver.stats_for(node)
        assert stats.lineage["double"] == ("sales", frozenset({"s_amount"}))

    def test_heavy_hitters_scaled(self, sales_db, deriver):
        node = scan(sales_db, "sales").node
        hh = deriver.stats_for(node).heavy_hitters("s_item")
        # Uniform item keys: every value is near the heavy-hitter threshold.
        assert all(freq > 0 for freq in hh.values()) or hh == {}


class TestSamplerFractions:
    def test_uniform_fraction(self, sales_db, deriver):
        base = scan(sales_db, "sales").node
        node = SamplerNode(base, UniformSpec(0.05, seed=1))
        assert deriver.stats_for(node).rows == pytest.approx(1_000, rel=0.01)

    def test_distinct_fraction_includes_leak(self, sales_db, deriver):
        base = scan(sales_db, "sales").node
        node = SamplerNode(base, DistinctSpec(["s_item"], delta=50, p=0.01, seed=1))
        rows = deriver.stats_for(node).rows
        # p * 20000 + 50 * 40 strata = 200 + 2000.
        assert rows == pytest.approx(2_200, rel=0.1)

    def test_memoization_by_key(self, sales_db, deriver):
        node1 = scan(sales_db, "sales").where(col("s_qty") > 5).node
        node2 = scan(sales_db, "sales").where(col("s_qty") > 5).node
        assert deriver.stats_for(node1) is deriver.stats_for(node2)


class TestSelectivityFunction:
    def test_udf_default(self, sales_db, deriver):
        from repro.algebra.expressions import Func

        stats = deriver.stats_for(scan(sales_db, "sales").node)
        pred = Func("f", lambda x: x > 0, [col("s_qty")])
        assert estimate_selectivity(pred, stats) == pytest.approx(1 / 3)

    def test_not_inverts(self, sales_db, deriver):
        stats = deriver.stats_for(scan(sales_db, "sales").node)
        sel = estimate_selectivity(col("s_item") == 3, stats)
        inv = estimate_selectivity(~(col("s_item") == 3), stats)
        assert sel + inv == pytest.approx(1.0)

    def test_or_bounded_by_one(self, sales_db, deriver):
        stats = deriver.stats_for(scan(sales_db, "sales").node)
        pred = (col("s_day") < 400) | (col("s_qty") > 0)
        assert estimate_selectivity(pred, stats) <= 1.0
