"""Partition-statistics catalog: summaries, layouts, validation.

The prune pass (DESIGN §14) trusts exactly three things about the
catalog: column summaries bound what a partition can contain, summaries
merge associatively back to table level, and ``validate`` catches a
summary that no longer matches the data. Each is pinned here.
"""

import numpy as np
import pytest

from repro.engine.table import Database, Table
from repro.stats import ColumnSummary, PartitionCatalog, PartitionLayout
from repro.stats.catalog import MAX_EXACT_VALUES


def make_db(n=5_000, seed=11):
    gen = np.random.default_rng(seed)
    db = Database()
    db.register(
        Table(
            "fact",
            {
                "f_date": np.sort(gen.integers(0, 365, n)),
                "f_key": gen.integers(0, 1_000, n),
                "f_amount": np.round(gen.exponential(20.0, n), 2),
            },
        )
    )
    db.register(Table("dim", {"d_key": np.arange(50), "d_flag": np.arange(50) % 3}))
    return db


class TestColumnSummary:
    def test_min_max_nulls_distinct(self):
        column = np.array([3.0, np.nan, 1.0, 4.0, 1.0, np.nan])
        summary = ColumnSummary.from_array(column)
        assert summary.min_value == 1.0
        assert summary.max_value == 4.0
        assert summary.null_count == 2
        assert summary.distinct == 3
        assert summary.values == (1.0, 3.0, 4.0)

    def test_empty_and_all_null(self):
        empty = ColumnSummary.from_array(np.array([], dtype=np.int64))
        assert empty.min_value is None and empty.values == ()
        nulls = ColumnSummary.from_array(np.array([np.nan, np.nan]))
        assert nulls.min_value is None
        assert nulls.null_count == 2

    def test_wide_column_drops_exact_values(self):
        column = np.arange(MAX_EXACT_VALUES + 10)
        summary = ColumnSummary.from_array(column)
        assert summary.values is None
        assert summary.distinct == MAX_EXACT_VALUES + 10

    def test_merge_matches_concatenated_build(self):
        gen = np.random.default_rng(5)
        a, b = gen.integers(0, 30, 400), gen.integers(10, 60, 600)
        merged = ColumnSummary.from_array(a).merge(ColumnSummary.from_array(b))
        whole = ColumnSummary.from_array(np.concatenate([a, b]))
        assert merged.min_value == whole.min_value
        assert merged.max_value == whole.max_value
        assert merged.null_count == whole.null_count
        assert merged.values == whole.values
        assert merged.distinct == whole.distinct

    def test_roundtrip(self):
        summary = ColumnSummary.from_array(np.random.default_rng(3).integers(0, 9, 100))
        back = ColumnSummary.from_dict(summary.to_dict())
        assert back.min_value == summary.min_value
        assert back.max_value == summary.max_value
        assert back.values == summary.values
        assert back.distinct == summary.distinct


class TestLayouts:
    def test_round_robin_matches_executor_split(self):
        db = make_db()
        layout = PartitionLayout(table="fact", num_partitions=4)
        splits = layout.split_indices(db.table("fact"))
        for p, idx in enumerate(splits):
            np.testing.assert_array_equal(idx % 4, p)

    def test_range_cluster_is_a_disjoint_cover_ordered_by_value(self):
        db = make_db()
        table = db.table("fact")
        layout = PartitionLayout.range_cluster(table, "f_date", 6)
        splits = layout.split_indices(table)
        assert sum(len(s) for s in splits) == table.num_rows
        assert len(np.unique(np.concatenate(splits))) == table.num_rows
        highs = [table.column("f_date")[s].max() for s in splits if len(s)]
        lows = [table.column("f_date")[s].min() for s in splits if len(s)]
        for hi, lo in zip(highs, lows[1:]):
            assert hi <= lo

    def test_non_numeric_cluster_falls_back_to_round_robin(self):
        db = Database()
        db.register(Table("t", {"name": np.array(["a", "b", "c", "d"])}))
        layout = PartitionLayout.range_cluster(db.table("t"), "name", 2)
        assert layout.kind == "round-robin"


class TestCatalog:
    def test_rollup_equals_whole_table(self):
        db = make_db()
        catalog = PartitionCatalog(db, cluster_columns={"fact": "f_date"})
        rollup = catalog.table_rollup("fact", 8)
        table = db.table("fact")
        assert rollup.rows == table.num_rows
        whole = ColumnSummary.from_array(table.column("f_key"))
        assert rollup.column("f_key").min_value == whole.min_value
        assert rollup.column("f_key").max_value == whole.max_value

    def test_lazy_build_tracking(self):
        catalog = PartitionCatalog(make_db())
        assert catalog.built() == ()
        catalog.summaries("dim", 4)
        assert catalog.built() == (("dim", 4),)

    def test_payload_roundtrip(self):
        db = make_db()
        catalog = PartitionCatalog(db, cluster_columns={"fact": "f_date"})
        catalog.summaries("fact", 4)
        back = PartitionCatalog.from_payload(db, catalog.to_payload())
        assert back.cluster_columns == catalog.cluster_columns
        assert back.layout("fact", 4) == catalog.layout("fact", 4)
        for mine, theirs in zip(back.summaries("fact", 4), catalog.summaries("fact", 4)):
            assert mine.rows == theirs.rows
            assert mine.column("f_date").min_value == theirs.column("f_date").min_value
        assert back.validate() == []

    def test_validate_clean_then_corrupted(self):
        db = make_db()
        catalog = PartitionCatalog(db, cluster_columns={"fact": "f_date"})
        catalog.summaries("fact", 4)
        assert catalog.validate() == []
        catalog.summaries("fact", 4)[2].rows += 7
        problems = catalog.validate("fact")
        assert len(problems) == 2  # the partition and the table total
        assert "fact[2]" in problems[0]

    def test_merge_rejects_cross_table(self):
        db = make_db()
        catalog = PartitionCatalog(db)
        fact = catalog.summaries("fact", 2)[0]
        dim = catalog.summaries("dim", 2)[0]
        with pytest.raises(Exception, match="merge"):
            fact.merge(dim)
