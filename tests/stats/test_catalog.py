"""Unit tests for the statistics catalog (paper Table 2)."""

import numpy as np
import pytest

from repro.engine.table import Database, Table
from repro.errors import CatalogError
from repro.stats.catalog import Catalog


@pytest.fixture()
def db(rng):
    database = Database()
    n = 10_000
    values = np.concatenate([np.zeros(2_000, dtype=int), rng.integers(1, 100, 8_000)])
    rng.shuffle(values)
    database.register(
        Table(
            "t",
            {
                "k": values,
                "g": rng.integers(0, 10, n),
                "x": rng.normal(50.0, 10.0, n),
                "label": np.array(["a", "b"] * (n // 2)),
            },
        )
    )
    return database


class TestCollection:
    def test_row_count(self, db):
        assert Catalog(db).row_count("t") == 10_000

    def test_distinct_single_column(self, db):
        catalog = Catalog(db)
        assert catalog.distinct("t", ["g"]) == 10
        assert catalog.distinct("t", ["k"]) == 100

    def test_distinct_column_set_exact(self, db):
        catalog = Catalog(db)
        table = db.table("t")
        truth = len({(a, b) for a, b in zip(table.column("g"), table.column("k"))})
        assert catalog.distinct("t", ["g", "k"]) == truth

    def test_distinct_empty_set_is_one(self, db):
        assert Catalog(db).distinct("t", []) == 1

    def test_numeric_stats(self, db):
        stats = Catalog(db).stats("t").column("x")
        assert stats.mean == pytest.approx(50.0, abs=1.0)
        assert stats.variance == pytest.approx(100.0, rel=0.2)
        assert stats.min_value is not None and stats.max_value is not None

    def test_string_column_has_no_numeric_stats(self, db):
        stats = Catalog(db).stats("t").column("label")
        assert stats.mean is None
        assert stats.distinct == 2

    def test_heavy_hitters_found(self, db):
        stats = Catalog(db).stats("t").column("k")
        assert 0 in stats.heavy_hitters
        assert stats.heavy_hitters[0] == 2_000

    def test_value_skew(self, db):
        skew = Catalog(db).value_skew("t", "x")
        assert skew == pytest.approx(10.0 / 50.0, rel=0.2)


class TestLaziness:
    def test_collected_on_first_access(self, db):
        catalog = Catalog(db)
        assert catalog.collected_tables() == ()
        catalog.stats("t")
        assert catalog.collected_tables() == ("t",)

    def test_set_distinct_cached(self, db):
        catalog = Catalog(db)
        first = catalog.distinct("t", ["g", "k"])
        assert catalog.distinct("t", ["g", "k"]) == first
        assert frozenset({"g", "k"}) in catalog.stats("t")._set_distinct_cache

    def test_missing_table_raises(self, db):
        with pytest.raises(CatalogError):
            Catalog(db).stats("missing")

    def test_missing_column_raises(self, db):
        with pytest.raises(CatalogError):
            Catalog(db).stats("t").column("missing")
