"""Zero-copy contracts of Table: shm pinning, slices, operator passthrough.

``np.shares_memory`` is the regression oracle here — these tests pin down
exactly which paths must NOT copy, so a future "harmless" refactor that
reintroduces a copy fails loudly.
"""

import numpy as np
import pytest

from repro.algebra.expressions import col
from repro.engine.operators import execute_select, execute_union_all
from repro.engine.table import Table
from repro.memory import manager, map_ref, release


@pytest.fixture(autouse=True)
def clean_segments():
    yield
    manager().release_all()


def make_table(rows=64):
    return Table(
        "t",
        {
            "x": np.arange(rows, dtype=np.int64),
            "y": np.linspace(0.0, 1.0, rows),
        },
    )


class TestRefLifecycle:
    def test_to_ref_from_ref_round_trip(self):
        table = make_table()
        ref = table.to_ref()
        try:
            back = Table.from_ref(ref)
            assert back.name == table.name
            assert back.num_rows == table.num_rows
            for c in table.column_names:
                np.testing.assert_array_equal(back.column(c), table.column(c))
        finally:
            release(ref)

    def test_from_ref_pins_the_ref(self):
        ref = make_table().to_ref()
        try:
            back = Table.from_ref(ref)
            assert back.backing_ref is ref
            assert make_table().backing_ref is None
        finally:
            release(ref)

    def test_two_maps_share_one_mapping(self):
        ref = make_table().to_ref()
        try:
            a, b = Table.from_ref(ref), Table.from_ref(ref)
            assert np.shares_memory(a.column("x"), b.column("x"))
        finally:
            release(ref)

    def test_mapped_columns_are_views_not_copies(self):
        ref = make_table().to_ref()
        try:
            raw = map_ref(ref)["x"]
            table = Table.from_ref(ref)
            assert np.shares_memory(table.column("x"), raw)
        finally:
            release(ref)


class TestSliceViews:
    def test_slice_shares_memory(self):
        table = make_table()
        piece = table.slice(8, 24)
        assert piece.num_rows == 16
        assert np.shares_memory(piece.column("x"), table.column("x"))
        np.testing.assert_array_equal(piece.column("x"), np.arange(8, 24))

    def test_slice_propagates_pin(self):
        ref = make_table().to_ref()
        try:
            table = Table.from_ref(ref)
            assert table.slice(0, 4).backing_ref is ref
        finally:
            release(ref)

    def test_head_is_a_view(self):
        table = make_table()
        assert np.shares_memory(table.head(10).column("y"), table.column("y"))


class TestOperatorPassthrough:
    def test_select_all_true_returns_input(self):
        table = make_table()
        out = execute_select(table, col("x") >= 0)
        assert out is table  # not even a wrapper: the fast path

    def test_select_filtering_still_copies(self):
        table = make_table()
        out = execute_select(table, col("x") < 10)
        assert out.num_rows == 10
        assert not np.shares_memory(out.column("x"), table.column("x"))

    def test_union_of_one_skips_concat(self):
        table = make_table()
        out = execute_union_all([table])
        assert np.shares_memory(out.column("x"), table.column("x"))

    def test_union_of_two_concatenates(self):
        a, b = make_table(8), make_table(8)
        out = execute_union_all([a, b])
        assert out.num_rows == 16
