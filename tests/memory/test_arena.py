"""Shared-memory arena: layout, lifecycle, and degenerate-table coverage.

The arena is the substrate of the zero-copy transport, so its unit bar is
strict: every shape a partition output can take (zero rows, one column,
all-NaN weights, unicode strings) must round-trip bit-exactly, refs must
stay O(schema) on the pickle pipe, and every segment must be reclaimable —
including by name alone, the crash path.
"""

import dataclasses
import pickle

import numpy as np
import pytest

from repro.engine.table import WEIGHT_COLUMN
from repro.errors import SchemaError
from repro.memory import (
    ALIGNMENT,
    check_extent,
    create_table_segment,
    live_segments,
    manager,
    map_ref,
    new_segment_name,
    plan_layout,
    reap,
    release,
)
from repro.memory.arena import SegmentError


@pytest.fixture(autouse=True)
def clean_segments():
    yield
    manager().release_all()


def roundtrip(columns, num_rows):
    name = new_segment_name("t")
    ref = create_table_segment(name, "t", columns, num_rows)
    try:
        return ref, map_ref(ref)
    finally:
        release(ref)


class TestRoundTrip:
    def test_mixed_dtypes_bit_exact(self):
        columns = {
            "i": np.arange(100, dtype=np.int64),
            "f": np.linspace(0.0, 1.0, 100),
            "u": np.array([f"v{i}" for i in range(100)]),  # '<U' dtype: raw
            "o": np.array([f"räw-{i}" for i in range(100)], dtype=object),
        }
        _, out = roundtrip(columns, 100)
        for key, expected in columns.items():
            np.testing.assert_array_equal(out[key], expected, err_msg=key)
        assert out["i"].dtype == np.int64
        assert out["u"].dtype == columns["u"].dtype

    def test_zero_row_table(self):
        columns = {"a": np.array([], dtype=np.float64), "b": np.array([], dtype=object)}
        ref, out = roundtrip(columns, 0)
        assert ref.num_rows == 0
        assert len(out["a"]) == 0 and len(out["b"]) == 0
        assert out["a"].dtype == np.float64

    def test_single_column_table(self):
        ref, out = roundtrip({"only": np.arange(7, dtype=np.int32)}, 7)
        assert ref.column_names == ("only",)
        np.testing.assert_array_equal(out["only"], np.arange(7, dtype=np.int32))

    def test_all_nan_weights_survive(self):
        weights = np.full(16, np.nan)
        _, out = roundtrip({WEIGHT_COLUMN: weights, "x": np.ones(16)}, 16)
        assert np.isnan(out[WEIGHT_COLUMN]).all()
        # Bit-exact, not just both-NaN.
        assert out[WEIGHT_COLUMN].tobytes() == weights.tobytes()

    def test_views_are_read_only(self):
        _, out = roundtrip({"x": np.arange(4)}, 4)
        with pytest.raises(ValueError):
            out["x"][0] = 99

    def test_columns_are_aligned(self):
        layouts, _, _ = plan_layout(
            {"a": np.arange(3, dtype=np.int8), "b": np.arange(3, dtype=np.float64)}
        )
        for layout in layouts:
            assert layout.offset % ALIGNMENT == 0


class TestRefs:
    def test_schema_bytes_independent_of_rows(self):
        small = create_table_segment(
            new_segment_name("s"), "t", {"x": np.arange(10, dtype=np.float64)}, 10
        )
        big = create_table_segment(
            new_segment_name("b"), "t", {"x": np.arange(200_000, dtype=np.float64)}, 200_000
        )
        try:
            assert big.nbytes >= 1_600_000
            # Both descriptors pickle to within a name's width of each other.
            assert abs(big.schema_bytes() - small.schema_bytes()) < 64
            assert big.schema_bytes() < 1_000
        finally:
            release(small)
            release(big)

    def test_ref_pickles(self):
        ref = create_table_segment(new_segment_name("p"), "t", {"x": np.ones(5)}, 5)
        try:
            clone = pickle.loads(pickle.dumps(ref))
            assert clone == ref
            np.testing.assert_array_equal(map_ref(clone)["x"], np.ones(5))
        finally:
            release(ref)

    def test_map_ref_refuses_short_segment(self):
        ref = create_table_segment(new_segment_name("m"), "t", {"x": np.ones(5)}, 5)
        try:
            lying = dataclasses.replace(ref, nbytes=ref.nbytes + 4096)
            with pytest.raises(SchemaError, match="refusing to read"):
                map_ref(lying)
        finally:
            release(ref)


class TestLifecycle:
    def test_release_removes_segment(self):
        name = new_segment_name("r")
        ref = create_table_segment(name, "t", {"x": np.ones(3)}, 3)
        assert name in live_segments()
        release(ref)
        assert name not in live_segments()
        with pytest.raises(SegmentError, match="does not exist"):
            map_ref(ref)

    def test_release_tolerates_live_views(self):
        name = new_segment_name("v")
        ref = create_table_segment(name, "t", {"x": np.arange(8, dtype=np.int64)}, 8)
        view = map_ref(ref)["x"]
        release(ref)  # unlink + close; views pin the mapping
        np.testing.assert_array_equal(view, np.arange(8))
        assert name not in live_segments()

    def test_reap_by_name_alone(self):
        name = new_segment_name("crash")
        create_table_segment(name, "t", {"x": np.ones(3)}, 3, keep_open=False)
        # The "worker died" shape: segment exists, nobody holds a mapping.
        assert name not in live_segments()
        assert reap(name) is True
        assert reap(name) is False  # idempotent

    def test_duplicate_name_raises(self):
        name = new_segment_name("dup")
        ref = create_table_segment(name, "t", {"x": np.ones(2)}, 2)
        try:
            with pytest.raises(SegmentError, match="already exists"):
                create_table_segment(name, "t", {"x": np.ones(2)}, 2)
        finally:
            release(ref)


class TestLargeOffsets:
    """>2 GiB arithmetic, forced at the unit level — no giant allocations."""

    def test_extents_past_2gib_are_exact(self):
        offset = 3 * 1024**3  # 3 GiB: past any 32-bit boundary
        start, end = check_extent(offset, 1024**3)
        assert start == offset and end == 4 * 1024**3
        assert isinstance(start, int) and isinstance(end, int)

    def test_int64_overflow_rejected(self):
        with pytest.raises(SchemaError, match="overflows int64"):
            check_extent(2**63 - 10, 100)

    def test_negative_extent_rejected(self):
        with pytest.raises(SchemaError, match="negative extent"):
            check_extent(-1, 10)
        with pytest.raises(SchemaError, match="negative extent"):
            check_extent(0, -5)

    def test_layout_end_uses_python_ints(self):
        layouts, total, _ = plan_layout({"x": np.arange(10, dtype=np.int64)})
        (layout,) = layouts
        assert layout.end() <= total
        assert isinstance(layout.end(), int)
