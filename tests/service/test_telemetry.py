"""End-to-end tests of the service telemetry plane: the ``/metrics``
scrape endpoint, the JSONL telemetry stream, and flight-recorder
postmortem bundles produced by real (mis)behaving queries."""

import json
import time
import urllib.request

import pytest

from repro.obs.export import validate_openmetrics
from repro.obs.flight import load_bundle, render_bundle
from repro.service import QueryServer, ServiceClient, ServiceConfig
from repro.service.server import QueryService


@pytest.fixture()
def telemetry_service(tiny_tpcds, tmp_path):
    config = ServiceConfig(
        num_workers=2,
        metrics_port=0,
        telemetry_path=str(tmp_path / "telemetry.jsonl"),
        telemetry_interval_seconds=0.05,
        postmortem_dir=str(tmp_path / "postmortems"),
    )
    service = QueryService(tiny_tpcds, config)
    server = QueryServer(service, port=0).start()
    yield service, server, tmp_path
    server.stop()


def _scrape(service, path="/metrics"):
    host, port = service.metrics_address
    with urllib.request.urlopen(f"http://{host}:{port}{path}", timeout=10) as resp:
        return resp.status, resp.headers.get("Content-Type"), resp.read().decode()


class TestScrapeEndpoint:
    def test_metrics_valid_and_carries_service_series(self, telemetry_service):
        service, server, _ = telemetry_service
        host, port = server.address
        with ServiceClient(host, port, timeout=60.0) as client:
            client.hello(tenant="ads")
            client.query("q01")
        status, content_type, body = _scrape(service)
        assert status == 200
        assert content_type.startswith("application/openmetrics-text")
        assert validate_openmetrics(body) == []
        assert "repro_service_admitted_total" in body
        assert 'tenant="ads"' in body

    def test_healthz_reports_service_gauges(self, telemetry_service):
        service, _, _ = telemetry_service
        status, _, body = _scrape(service, "/healthz")
        assert status == 200
        health = json.loads(body)
        assert health["ok"] is True
        assert health["queue_depth"] == 0
        assert health["draining"] is False
        assert health["audit_backlog"] == 0

    def test_metrics_address_none_without_endpoint(self, tiny_tpcds):
        service = QueryService(tiny_tpcds, ServiceConfig(num_workers=1))
        server = QueryServer(service, port=0).start()
        try:
            assert service.metrics_address is None
        finally:
            server.stop()


class TestTelemetryStream:
    def test_snapshots_accumulate_and_flush_on_close(self, telemetry_service):
        service, server, tmp_path = telemetry_service
        host, port = server.address
        with ServiceClient(host, port, timeout=60.0) as client:
            client.hello()
            client.query("q01")
        time.sleep(0.2)
        server.stop()
        lines = [json.loads(line) for line in
                 (tmp_path / "telemetry.jsonl").read_text().splitlines()]
        assert len(lines) >= 2
        for record in lines:
            assert {"ts", "metrics", "queue_depth"} <= set(record)
        admitted = [
            entry["value"]
            for record in lines
            for entry in record["metrics"].get("counter", {}).get(
                "service.admitted", [])
        ]
        assert admitted and max(admitted) >= 1.0


class TestPostmortems:
    def test_cancelled_query_dumps_renderable_bundle(self, telemetry_service):
        service, server, tmp_path = telemetry_service
        host, port = server.address
        with ServiceClient(host, port, timeout=60.0) as client:
            client.hello(tenant="ads")
            # First submission of this query: no latency estimate yet, so
            # admission lets it through and governance fires mid-flight.
            try:
                client.query("q06", deadline_ms=5.0)
            except Exception:  # noqa: BLE001 - cancelled/degraded both fine
                pass
        deadline = time.monotonic() + 10.0
        dump_dir = tmp_path / "postmortems"
        bundles = []
        while time.monotonic() < deadline and not bundles:
            if dump_dir.is_dir():
                bundles = sorted(
                    e for e in dump_dir.iterdir()
                    if e.name.startswith("postmortem-")
                )
            time.sleep(0.05)
        assert bundles, "no postmortem bundle written for a doomed query"
        bundle = str(bundles[-1])
        record = load_bundle(bundle)
        assert record["query"] == "q06" and record["tenant"] == "ads"
        assert record["outcome"].startswith(("cancelled", "served.degraded"))
        text = render_bundle(bundle)
        assert "postmortem: query q06" in text
        assert "decision trail:" in text

    def test_served_queries_leave_no_bundle(self, telemetry_service):
        service, server, tmp_path = telemetry_service
        host, port = server.address
        with ServiceClient(host, port, timeout=60.0) as client:
            client.hello()
            client.query("q01")
        dump_dir = tmp_path / "postmortems"
        bundles = [] if not dump_dir.is_dir() else [
            e for e in dump_dir.iterdir() if e.name.startswith("postmortem-")
        ]
        assert bundles == []
        # The flight ring still has the query's trail in memory.
        recent = service.flight.recent()
        assert any(r.query == "q01" and r.outcome == "served" for r in recent)


class TestSloSurface:
    def test_slo_op_reports_ledger_auditor_flight(self, telemetry_service):
        service, server, _ = telemetry_service
        host, port = server.address
        with ServiceClient(host, port, timeout=60.0) as client:
            client.hello(tenant="ads")
            client.query("q01")
            report = client.slo()
        assert report["slo"]["ads"]["requests"] >= 1
        assert report["auditor"]["enabled"] is False
        assert report["flight"]["recorded"] >= 1
        assert report["calibration"] == []
