"""The governor's degradation ladder: unit mechanics and service wiring.

Unit tests drive :class:`QueryGovernor` with scripted collaborators so
each ladder transition (pressure, infeasible-deadline, mid-flight budget,
salvaged partial) is asserted in isolation; integration tests run the real
service — in-process and over a socket — and assert the visible contract:
degraded replies carry ``{rung, reason, ladder}``, governance endings are
typed ``cancelled.*`` errors, client disconnects cancel mid-flight, and a
drain rejects new work while finishing or cancelling the old.
"""

import socket
import threading
import time
from types import SimpleNamespace

import pytest

from repro.algebra.builder import scan
from repro.algebra.logical import SamplerNode
from repro.engine.governance import GovernanceContext
from repro.errors import (
    AdmissionRejected,
    BudgetExceeded,
    DeadlineExceeded,
    QueryCancelled,
)
from repro.obs.registry import MetricsRegistry
from repro.samplers.uniform import UniformSpec
from repro.samplers.universe import UniverseSpec
from repro.service import protocol
from repro.service.admission import AdmissionConfig, AdmissionController, QueryTicket
from repro.service.governor import GovernorConfig, QueryGovernor, coarsen_samplers
from repro.service.server import QueryServer, QueryService, ServiceConfig
from repro.workloads.tpcds import QUERY_BUILDERS, query_by_name


def uniform_plan(sales_db, p=0.2):
    return SamplerNode(scan(sales_db, "sales").node, UniformSpec(p, seed=1))


class TestCoarsenSamplers:
    def test_scales_uniform_with_floor(self, sales_db):
        plan = uniform_plan(sales_db, p=0.2)
        coarse, changed = coarsen_samplers(plan, factor=0.25, min_p=0.01)
        assert changed == 1
        assert coarse.spec.p == pytest.approx(0.05)
        assert coarse.spec.seed == plan.spec.seed  # determinism preserved
        floored, _ = coarsen_samplers(plan, factor=1e-9, min_p=0.01)
        assert floored.spec.p == pytest.approx(0.01)

    def test_universe_samplers_are_frozen(self, sales_db):
        # Universe rates are baked into COUNT-DISTINCT rescaling at plan
        # time; coarsening them afterwards would bias the answer.
        plan = SamplerNode(
            scan(sales_db, "sales").node, UniverseSpec(("s_cust",), 0.25, seed=7)
        )
        coarse, changed = coarsen_samplers(plan, factor=0.25)
        assert changed == 0
        assert coarse.spec.p == pytest.approx(0.25)

    def test_no_headroom_reports_zero(self, sales_db):
        plan = scan(sales_db, "sales").node  # no samplers at all
        _, changed = coarsen_samplers(plan, factor=0.25)
        assert changed == 0


class _ScriptedExecutor:
    """Replays a list of outcomes (results or exceptions) per execute()."""

    def __init__(self, outcomes):
        self.outcomes = list(outcomes)
        self.calls = []

    def execute(self, plan, governance=None):
        self.calls.append(plan)
        outcome = self.outcomes.pop(0)
        if isinstance(outcome, BaseException):
            raise outcome
        return outcome


class _StubPlanner:
    def __init__(self, quickr_plan, exact_plan=None):
        self._quickr = quickr_plan
        self._exact = exact_plan if exact_plan is not None else quickr_plan

    def plan(self, query):
        return SimpleNamespace(plan=self._quickr)

    def plan_baseline(self, query):
        return SimpleNamespace(plan=self._exact)


def make_governor(sales_db, outcomes, config=None, plan=None):
    registry = MetricsRegistry()
    admission = AdmissionController(AdmissionConfig(), registry)
    executor = _ScriptedExecutor(outcomes)
    planner = _StubPlanner(plan if plan is not None else uniform_plan(sales_db))
    governor = QueryGovernor(
        config or GovernorConfig(), planner, executor, admission, registry
    )
    return governor, executor, admission, registry


def make_ticket(deadline_at=None, mode="quickr"):
    session = SimpleNamespace(tenant="t")
    ctx = GovernanceContext(deadline_at=deadline_at)
    return QueryTicket(session, "q", mode, deadline_at, governance=ctx)


OK = SimpleNamespace(degraded=False)


class TestLadderMechanics:
    def test_clean_run_is_undegraded(self, sales_db):
        governor, executor, _, _ = make_governor(sales_db, [OK])
        result, info = governor.run(make_ticket(), query=None)
        assert result is OK and info is None
        assert len(executor.calls) == 1

    def test_budget_trip_steps_down_to_coarse(self, sales_db):
        governor, executor, _, registry = make_governor(
            sales_db, [BudgetExceeded("too big"), OK]
        )
        result, info = governor.run(make_ticket(), query=None)
        assert result is OK
        assert info["rung"] == "quickr-coarse"
        assert info["reason"] == "budget"
        assert info["ladder"] == [
            {"from": "quickr", "to": "quickr-coarse", "reason": "budget"}
        ]
        assert len(executor.calls) == 2
        # The retried plan really is the coarsened one.
        assert executor.calls[1].spec.p < executor.calls[0].spec.p
        assert registry.value(
            "service.governor.downgrades", rung="quickr-coarse", reason="budget"
        ) == 1.0

    def test_budget_at_bottom_rung_raises_typed(self, sales_db):
        governor, _, _, _ = make_governor(
            sales_db,
            [BudgetExceeded("too big")],
            plan=scan(sales_db, "sales").node,  # nothing to coarsen
        )
        with pytest.raises(BudgetExceeded):
            governor.run(make_ticket(), query=None)

    def test_pressure_starts_one_rung_lower(self, sales_db):
        governor, executor, _, _ = make_governor(
            sales_db, [OK], config=GovernorConfig(queue_pressure_fraction=0.0)
        )
        result, info = governor.run(make_ticket(), query=None)
        assert info["reason"] == "pressure"
        assert info["rung"] == "quickr-coarse"
        assert len(executor.calls) == 1  # downgraded before running, not after

    def test_pressure_without_headroom_stays_put(self, sales_db):
        governor, executor, _, _ = make_governor(
            sales_db,
            [OK],
            config=GovernorConfig(queue_pressure_fraction=0.0),
            plan=scan(sales_db, "sales").node,
        )
        result, info = governor.run(make_ticket(), query=None)
        assert info is None  # no coarser plan exists; served at full rate

    def test_infeasible_deadline_steps_down_preflight(self, sales_db):
        governor, executor, admission, _ = make_governor(sales_db, [OK])
        admission.estimator.observe(("q", "quickr"), 10.0)  # way over budget
        ticket = make_ticket(deadline_at=time.monotonic() + 0.5)
        result, info = governor.run(ticket, query=None)
        assert info["reason"] == "infeasible-deadline"
        assert info["rung"] == "quickr-coarse"
        assert len(executor.calls) == 1

    def test_cancelled_never_walks_the_ladder(self, sales_db):
        governor, executor, _, _ = make_governor(sales_db, [OK])
        ticket = make_ticket()
        ticket.governance.token.cancel("client-disconnect")
        with pytest.raises(QueryCancelled):
            governor.run(ticket, query=None)
        assert executor.calls == []  # never reached the engine

    def test_selection_rung_used_when_coarsening_has_no_headroom(self, sales_db):
        """With coarsen_factor=1.0 the quickr-coarse rung produces no new
        plan, so pressure steps past it onto quickr-select — available
        because the executor's database carries a partition catalog — and
        the ticket's governance context carries the selection fraction."""
        governor, executor, _, _ = make_governor(
            sales_db,
            [OK],
            config=GovernorConfig(
                queue_pressure_fraction=0.0, coarsen_factor=1.0, selection_fraction=0.4
            ),
        )
        executor.database = SimpleNamespace(partition_stats=object())
        ticket = make_ticket()
        result, info = governor.run(ticket, query=None)
        assert info["rung"] == "quickr-select"
        assert info["reason"] == "pressure"
        assert ticket.governance.selection_fraction == pytest.approx(0.4)

    def test_selection_rung_needs_a_catalog(self, sales_db):
        governor, executor, _, _ = make_governor(
            sales_db,
            [OK],
            config=GovernorConfig(queue_pressure_fraction=0.0, coarsen_factor=1.0),
        )
        # No database/catalog on the executor: both degradation rungs are
        # unavailable, so the query is served at full fidelity.
        result, info = governor.run(make_ticket(), query=None)
        assert info is None
        assert make_ticket().governance.selection_fraction is None

    def test_engine_salvage_is_the_partial_rung(self, sales_db):
        salvaged = SimpleNamespace(degraded=True, abort_reason="deadline")
        governor, _, _, registry = make_governor(sales_db, [salvaged])
        result, info = governor.run(make_ticket(), query=None)
        assert result is salvaged
        assert info["rung"] == "partial"
        assert info["reason"] == "deadline"
        assert registry.value("service.governor.degraded_replies") == 1.0


# -- integration: the real service --------------------------------------------

def slow_builder(db, seconds=0.4):
    time.sleep(seconds)
    return query_by_name(db, "q12")


def make_service(db, governor=None, builders=None, workers=2):
    config = ServiceConfig(
        num_workers=workers,
        admission=AdmissionConfig(max_queue_depth=16, tenant_quota=8),
        governor=governor or GovernorConfig(),
        drain_seconds=5.0,
    )
    return QueryService(db, config, query_builders=builders or dict(QUERY_BUILDERS))


class TestServiceIntegration:
    def test_degraded_reply_carries_rung_and_reason(self, tiny_tpcds):
        # queue_pressure_fraction=0 means permanent pressure: every query
        # with coarsening headroom (q15's quickr plan has a uniform
        # sampler) must serve one rung down and say so.
        service = make_service(
            tiny_tpcds, governor=GovernorConfig(queue_pressure_fraction=0.0)
        ).start()
        try:
            session = service.open_session()
            payload = service.execute(session, "q15", mode="quickr", timeout=60.0)
            assert payload["degraded"] is not None
            assert payload["degraded"]["rung"] == "quickr-coarse"
            assert payload["degraded"]["reason"] == "pressure"
            assert payload["stats"]["degraded"] is True
            assert session.queries_degraded == 1
            # Exact-mode queries have no sampler rungs below them here,
            # and q07's quickr plan has no uniform sampler: both undegraded.
            clean = service.execute(session, "q07", mode="quickr", timeout=60.0)
            assert clean["degraded"] is None
        finally:
            service.close()

    def test_mid_flight_deadline_is_typed_cancelled(self, tiny_tpcds):
        builders = dict(QUERY_BUILDERS)
        builders["slow"] = lambda db: slow_builder(db, seconds=0.3)
        service = make_service(tiny_tpcds, builders=builders).start()
        try:
            session = service.open_session()
            # Admitted (no EWMA yet), but the builder outlives the 50 ms
            # deadline: the first checkpoint after it must trip, typed.
            with pytest.raises(DeadlineExceeded):
                service.execute(session, "slow", deadline_ms=50.0, timeout=30.0)
            assert session.queries_cancelled == 1
            assert session.queries_failed == 0
            assert service.registry.value(
                "service.governor.cancelled", reason="deadline"
            ) == 1.0
        finally:
            service.close()

    def test_drain_rejects_new_and_cancels_stragglers(self, tiny_tpcds):
        builders = dict(QUERY_BUILDERS)
        builders["slow"] = lambda db: slow_builder(db, seconds=0.6)
        service = make_service(tiny_tpcds, builders=builders).start()
        session = service.open_session()
        outcome = {}

        def run_slow():
            try:
                service.execute(session, "slow", timeout=30.0)
                outcome["result"] = "served"
            except QueryCancelled as exc:
                outcome["cancelled"] = exc.reason_code

        waiter = threading.Thread(target=run_slow)
        waiter.start()
        deadline = time.monotonic() + 5.0
        while not service.admission.running_tickets():
            assert time.monotonic() < deadline, "slow query never dispatched"
            time.sleep(0.01)
        service.admission.begin_drain()
        with pytest.raises(AdmissionRejected) as info:
            service.submit(session, "q07")
        assert info.value.reason == "draining"
        # Grace shorter than the query: the straggler must be cancelled.
        finished = service.drain(grace_seconds=0.05)
        waiter.join(timeout=10.0)
        assert not waiter.is_alive()
        assert not finished
        assert outcome == {"cancelled": "shutdown-drain"}
        assert service.registry.value(
            "service.rejected", tenant=session.tenant, reason="draining"
        ) == 1.0

    def test_drain_with_idle_service_is_clean(self, tiny_tpcds):
        service = make_service(tiny_tpcds).start()
        assert service.drain(grace_seconds=1.0) is True  # nothing to cancel

    def test_client_disconnect_cancels_mid_flight(self, tiny_tpcds):
        builders = dict(QUERY_BUILDERS)
        builders["slow"] = lambda db: slow_builder(db, seconds=0.8)
        service = make_service(tiny_tpcds, builders=builders)
        server = QueryServer(service, port=0).start()
        try:
            registry = service.registry
            conn = socket.create_connection(server.address, timeout=10.0)
            protocol.send_message(conn, {"id": 1, "op": "query", "query": "slow"})
            time.sleep(0.2)  # the query is now mid-builder on a worker
            conn.close()  # client walks away
            deadline = time.monotonic() + 10.0
            while registry.value("service.governor.client_disconnects") is None:
                assert time.monotonic() < deadline, "disconnect never detected"
                time.sleep(0.02)
            # The worker unwinds at its first checkpoint and frees the slot.
            while service.admission.running_tickets():
                assert time.monotonic() < deadline, "worker never freed"
                time.sleep(0.02)
            assert registry.value(
                "service.governor.cancelled", reason="client-disconnect"
            ) == 1.0
        finally:
            server.stop()

    def test_stats_expose_governor_block(self, tiny_tpcds):
        service = make_service(tiny_tpcds).start()
        try:
            block = service.stats()["governor"]
            assert block["enabled"] is True
            assert set(block) >= {
                "downgrades", "degraded_replies", "cancelled", "client_disconnects",
            }
        finally:
            service.close()
