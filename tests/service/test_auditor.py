"""Tests for the background exact-replay accuracy auditor."""

import threading
import time

import pytest

from repro.engine.executor import Executor
from repro.obs.accuracy import AccuracyLedger
from repro.obs.registry import MetricsRegistry
from repro.optimizer.planner import QuickrPlanner
from repro.service.auditor import AuditorConfig, QueryAuditor
from repro.workloads.tpcds import QUERY_BUILDERS, query_by_name


class FakeAdmission:
    """Just the queue_depth surface the auditor's idle gate reads."""

    def __init__(self, depth=0):
        self.queue_depth = depth


def make_auditor(db, config=None, admission=None, registry=None):
    registry = registry if registry is not None else MetricsRegistry()
    return QueryAuditor(
        config or AuditorConfig(sample_fraction=1.0),
        QuickrPlanner(db),
        Executor(db, registry=registry),
        admission or FakeAdmission(),
        AccuracyLedger(registry),
        registry,
        QUERY_BUILDERS,
        db,
    )


def served_answer(db, name="q01"):
    planner = QuickrPlanner(db)
    executor = Executor(db)
    return executor.execute(planner.plan(query_by_name(db, name)).plan).table


class TestConfig:
    def test_stride_from_fraction(self):
        assert AuditorConfig(sample_fraction=1.0).stride == 1
        assert AuditorConfig(sample_fraction=0.1).stride == 10
        assert AuditorConfig(sample_fraction=0.34).stride == 3
        assert AuditorConfig(sample_fraction=0.0).stride == 0

    def test_disabled_auditor_never_starts_a_thread(self, tiny_tpcds):
        auditor = make_auditor(
            tiny_tpcds, AuditorConfig(enabled=False)
        ).start()
        assert auditor._thread is None
        auditor.close()


class TestEnqueue:
    def test_exact_answers_are_never_audited(self, tiny_tpcds):
        auditor = make_auditor(tiny_tpcds)
        assert not auditor.maybe_enqueue("q01", "exact", "t", "exact", None)
        assert not auditor.maybe_enqueue("q01", "quickr", "t", "exact", None)
        assert auditor.backlog == 0

    def test_stride_picks_every_kth(self, tiny_tpcds):
        auditor = make_auditor(
            tiny_tpcds, AuditorConfig(enabled=True, sample_fraction=1 / 3)
        )
        picked = [
            auditor.maybe_enqueue(f"q{i:02d}", "quickr", "t", "quickr", None)
            for i in range(1, 10)
        ]
        assert picked == [False, False, True] * 3
        assert auditor.backlog == 3

    def test_queue_overflow_drops_and_counts(self, tiny_tpcds):
        auditor = make_auditor(
            tiny_tpcds,
            AuditorConfig(enabled=True, sample_fraction=1.0, max_queue=2),
        )
        for i in range(4):
            auditor.maybe_enqueue(f"q{i:02d}", "quickr", "t", "quickr", None)
        assert auditor.backlog == 2
        assert auditor.ledger.report()["audits_abandoned"] == 2


class TestAudit:
    def test_end_to_end_fills_calibration(self, tiny_tpcds):
        auditor = make_auditor(tiny_tpcds)
        approx = served_answer(tiny_tpcds, "q02")
        auditor.maybe_enqueue("q02", "quickr", "ads", "quickr", approx)
        job = auditor._next_job()
        assert job is not None
        auditor._audit(job)
        assert auditor.audits_completed == 1
        [row] = auditor.ledger.report()["calibration"]
        assert row["tenant"] == "ads" and row["rung"] == "quickr"
        assert row["sampler_kind"] not in ("", "unknown")
        assert row["cells_checked"] > 0
        assert row["audit_seconds"] > 0

    def test_background_thread_drains_queue(self, tiny_tpcds):
        auditor = make_auditor(tiny_tpcds).start()
        try:
            approx = served_answer(tiny_tpcds, "q02")
            auditor.maybe_enqueue("q02", "quickr", "t", "quickr", approx)
            assert auditor.wait_drained(timeout=30.0)
            assert auditor.audits_completed == 1
        finally:
            auditor.close()

    def test_preempt_cancels_inflight_replay(self, tiny_tpcds):
        auditor = make_auditor(tiny_tpcds)
        assert not auditor.preempt()  # nothing in flight
        from repro.engine.governance import GovernanceContext

        ctx = GovernanceContext()
        auditor._inflight = ctx
        assert auditor.preempt()
        assert ctx.token.cancelled and ctx.token.reason == "auditor-yield"

    def test_preempted_audit_requeues_then_abandons(self, tiny_tpcds):
        auditor = make_auditor(
            tiny_tpcds,
            AuditorConfig(enabled=True, sample_fraction=1.0, max_attempts=2),
        )
        approx = served_answer(tiny_tpcds, "q02")

        # Fire the token before execution starts: every replay attempt
        # unwinds with a GovernanceError at its first checkpoint.
        real_execute = auditor.executor.execute

        def sabotaged(plan, governance=None, **kwargs):
            if governance is not None:
                governance.token.cancel("auditor-yield")
            return real_execute(plan, governance=governance, **kwargs)

        auditor.executor.execute = sabotaged
        auditor.maybe_enqueue("q02", "quickr", "t", "quickr", approx)
        job = auditor._next_job()
        auditor._audit(job)  # attempt 1: preempted, requeued
        assert auditor.backlog == 1 and auditor.audits_preempted == 1
        job = auditor._next_job()
        auditor._audit(job)  # attempt 2: hits max_attempts, abandoned
        assert auditor.backlog == 0
        assert auditor.ledger.report()["audits_abandoned"] == 1
        assert auditor.audits_completed == 0

    def test_idle_gate_waits_for_live_queue(self, tiny_tpcds):
        admission = FakeAdmission(depth=1)
        auditor = make_auditor(
            tiny_tpcds,
            AuditorConfig(enabled=True, sample_fraction=1.0,
                          idle_poll_seconds=0.01),
            admission=admission,
        )
        auditor.maybe_enqueue("q01", "quickr", "t", "quickr", None)
        got = []

        def fetch():
            got.append(auditor._next_job())

        t = threading.Thread(target=fetch)
        t.start()
        time.sleep(0.15)
        assert not got, "auditor started a replay while live queries queued"
        admission.queue_depth = 0
        t.join(timeout=5.0)
        assert got and got[0] is not None

    def test_summary_shape(self, tiny_tpcds):
        summary = make_auditor(tiny_tpcds).summary()
        assert summary["enabled"] and summary["stride"] == 1
        assert {"served_approx", "backlog", "completed", "preempted"} <= set(
            summary
        )


class TestServiceIntegration:
    def test_service_with_auditor_produces_calibration(self, tiny_tpcds):
        from repro.service import (
            QueryServer, ServiceClient, ServiceConfig,
        )
        from repro.service.server import QueryService

        config = ServiceConfig(
            num_workers=2,
            audit=AuditorConfig(enabled=True, sample_fraction=1.0),
        )
        service = QueryService(tiny_tpcds, config)
        server = QueryServer(service, port=0).start()
        try:
            host, port = server.address
            with ServiceClient(host, port, timeout=60.0) as client:
                client.hello(tenant="ads")
                for _ in range(2):
                    client.query("q02")
                assert service.auditor.wait_drained(timeout=60.0)
                report = client.slo()
            assert report["auditor"]["completed"] >= 1
            rows = report["calibration"]
            assert rows and all(r["tenant"] == "ads" for r in rows)
            assert all(r["rung"] == "quickr" for r in rows)
        finally:
            server.stop()

    def test_live_submit_preempts_inflight_audit(self, tiny_tpcds):
        """A new live query fires the in-flight replay's token."""
        from repro.engine.governance import GovernanceContext
        from repro.service import QueryServer, ServiceClient, ServiceConfig

        from repro.service.server import QueryService

        config = ServiceConfig(
            num_workers=2,
            audit=AuditorConfig(enabled=True, sample_fraction=1.0),
        )
        service = QueryService(tiny_tpcds, config)
        server = QueryServer(service, port=0).start()
        try:
            ctx = GovernanceContext()
            service.auditor._inflight = ctx
            host, port = server.address
            with ServiceClient(host, port, timeout=60.0) as client:
                client.hello()
                client.query("q02")
            assert ctx.token.cancelled
            assert ctx.token.reason == "auditor-yield"
        finally:
            service.auditor._inflight = None
            server.stop()
