"""Wire-protocol tests: framing, table serialization, digest integrity."""

import socket

import numpy as np
import pytest

from repro.engine.table import Table
from repro.errors import ProtocolError
from repro.service import protocol


def make_table(**columns):
    return Table("answer", columns)


class TestFraming:
    def test_encode_decode_roundtrip(self):
        message = {"id": 7, "op": "query", "query": "q12", "deadline_ms": 150.5}
        assert protocol.decode_message(protocol.encode_message(message).rstrip(b"\n")) == message

    def test_encode_is_one_line(self):
        frame = protocol.encode_message({"op": "ping", "note": "a\nb"})
        assert frame.endswith(b"\n")
        assert frame.count(b"\n") == 1  # embedded newlines are escaped

    def test_decode_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            protocol.decode_message(b"{not json")

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError):
            protocol.decode_message(b"[1, 2, 3]")

    def test_read_messages_reassembles_split_frames(self):
        left, right = socket.socketpair()
        try:
            frame = protocol.encode_message({"id": 1, "op": "ping"})
            # Deliver the frame in three fragments plus a second message.
            left.sendall(frame[:3])
            left.sendall(frame[3:7])
            left.sendall(frame[7:])
            left.sendall(protocol.encode_message({"id": 2, "op": "close"}))
            left.close()
            messages = list(protocol.read_messages(right))
        finally:
            right.close()
        assert [m["id"] for m in messages] == [1, 2]

    def test_read_messages_raises_on_mid_frame_close(self):
        left, right = socket.socketpair()
        try:
            left.sendall(b'{"id": 1, "op": ')  # no newline, then close
            left.close()
            with pytest.raises(ProtocolError):
                list(protocol.read_messages(right))
        finally:
            right.close()

    def test_response_helpers(self):
        ok = protocol.ok_response(3, pong=True)
        assert ok == {"id": 3, "ok": True, "pong": True}
        err = protocol.error_response(4, "rejected.quota", "over quota", retryable=True)
        assert err["ok"] is False
        assert err["error"]["code"] == "rejected.quota"
        assert err["error"]["retryable"] is True


class TestTableWire:
    def test_roundtrip_bit_identical(self):
        table = make_table(
            g=np.array([1, 2, 3], dtype=np.int64),
            x=np.array([1.5, -0.1, 3.25e-17], dtype=np.float64),
            s=np.array(["a", "bb", "ccc"]),
        )
        wire = protocol.table_to_wire(table)
        rebuilt = protocol.table_from_wire(wire)  # verify=True recomputes digest
        assert rebuilt.column_names == table.column_names
        for name in table.column_names:
            np.testing.assert_array_equal(rebuilt.column(name), table.column(name))
        assert protocol.table_digest(rebuilt) == wire["digest"]

    def test_float_bits_survive_json(self):
        import json

        # Adversarial doubles: json must round-trip the exact bits.
        values = np.array([0.1, 1 / 3, np.pi, 1e-300, -1e300, np.nan, np.inf])
        table = make_table(x=values)
        wire = json.loads(json.dumps(protocol.table_to_wire(table)))
        rebuilt = protocol.table_from_wire(wire)
        assert rebuilt.column("x").tobytes() == values.tobytes()

    def test_digest_detects_tampering(self):
        table = make_table(x=np.array([1.0, 2.0]))
        wire = protocol.table_to_wire(table)
        wire["columns"]["x"]["values"][0] = 1.0000000001
        with pytest.raises(ProtocolError, match="digest mismatch"):
            protocol.table_from_wire(wire)

    def test_digest_independent_of_string_width(self):
        # '<U1' vs '<U9' buffers holding equal values must hash equal.
        narrow = make_table(s=np.array(["a", "b"], dtype="<U1"))
        wide = make_table(s=np.array(["a", "b"], dtype="<U9"))
        assert protocol.table_digest(narrow) == protocol.table_digest(wide)

    def test_digest_sensitive_to_each_component(self):
        base = make_table(x=np.array([1.0, 2.0]))
        assert protocol.table_digest(base) != protocol.table_digest(
            make_table(x=np.array([1.0, 2.5]))  # values
        )
        assert protocol.table_digest(base) != protocol.table_digest(
            make_table(y=np.array([1.0, 2.0]))  # column name
        )
        assert protocol.table_digest(base) != protocol.table_digest(
            make_table(x=np.array([1, 2], dtype=np.int64))  # dtype
        )

    def test_digest_only_payload(self):
        table = make_table(x=np.array([1.0]))
        wire = protocol.table_to_wire(table, include_rows=False)
        assert "columns" not in wire
        assert protocol.table_from_wire(wire) is None
        assert wire["digest"] == protocol.table_digest(table)
