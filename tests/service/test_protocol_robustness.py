"""Hostile-peer protocol tests: the server never hangs, never crashes.

Each test throws one class of malformed traffic at a live
:class:`QueryServer` — a slow-loris drip, a frame cut off mid-line, an
oversized frame, bytes that aren't JSON — and asserts the contract from
the protocol docstring: a typed ``protocol`` error or a clean disconnect,
and a server that still answers well-behaved clients afterwards.
"""

import socket
import time

import pytest

from repro.errors import ProtocolError
from repro.service import (
    AdmissionConfig,
    QueryServer,
    QueryService,
    ServiceClient,
    ServiceConfig,
)
from repro.service import protocol


def start_server(tiny_tpcds, **config_kwargs):
    defaults = dict(
        num_workers=2,
        admission=AdmissionConfig(max_queue_depth=16, tenant_quota=8),
    )
    defaults.update(config_kwargs)
    service = QueryService(tiny_tpcds, ServiceConfig(**defaults))
    return QueryServer(service, port=0).start()


def raw_connect(server, timeout=10.0):
    return socket.create_connection(server.address, timeout=timeout)


def read_response(conn):
    return next(protocol.read_messages(conn))


def assert_still_serving(server):
    """A well-behaved client gets a normal answer after the abuse."""
    host, port = server.address
    with ServiceClient(host, port, timeout=60.0) as client:
        client.hello(tenant="survivor")
        assert client.ping()


class TestReadMessages:
    def test_cap_parameter_trips_protocol_error(self):
        a, b = socket.socketpair()
        try:
            a.sendall(b"x" * 128)  # no newline: one unbounded frame
            reader = protocol.read_messages(b, max_line_bytes=64)
            with pytest.raises(ProtocolError, match="exceeds 64 bytes"):
                next(reader)
        finally:
            a.close()
            b.close()


class TestHostilePeers:
    def test_slow_loris_is_disconnected_not_pinned(self, tiny_tpcds):
        # A peer that sends one byte and goes quiet must be cut loose by
        # the idle timeout, not hold a reader thread forever.
        server = start_server(tiny_tpcds, idle_timeout_seconds=0.2)
        try:
            conn = raw_connect(server)
            conn.sendall(b"{")  # partial frame, then silence
            deadline = time.monotonic() + 5.0
            conn.settimeout(5.0)
            while True:
                assert time.monotonic() < deadline, "server never closed the drip"
                try:
                    if conn.recv(4096) == b"":
                        break  # server hung up: the guard fired
                except socket.timeout:  # pragma: no cover - timing slack
                    continue
            conn.close()
            assert_still_serving(server)
        finally:
            server.stop()

    def test_partial_frame_then_close_is_clean(self, tiny_tpcds):
        server = start_server(tiny_tpcds)
        try:
            conn = raw_connect(server)
            conn.sendall(b'{"id": 1, "op": "pi')  # cut mid-frame
            conn.close()
            assert_still_serving(server)
            assert server.service.registry.value("service.protocol_errors") == 1.0
        finally:
            server.stop()

    def test_oversized_frame_is_rejected_typed(self, tiny_tpcds):
        server = start_server(tiny_tpcds, max_frame_bytes=1024)
        try:
            conn = raw_connect(server)
            # A legal-looking request bloated past the frame cap; the server
            # must refuse to buffer it and answer with a typed error.
            huge = {"id": 1, "op": "hello", "tenant": "x" * 4096}
            conn.sendall(protocol.encode_message(huge))
            response = read_response(conn)
            assert response["ok"] is False
            assert response["error"]["code"] == "protocol"
            assert "exceeds" in response["error"]["message"]
            conn.close()
            assert_still_serving(server)
        finally:
            server.stop()

    def test_garbage_json_is_typed_protocol_error(self, tiny_tpcds):
        server = start_server(tiny_tpcds)
        try:
            conn = raw_connect(server)
            conn.sendall(b"\x00\xffnot json at all\n")
            response = read_response(conn)
            assert response["ok"] is False
            assert response["error"]["code"] == "protocol"
            conn.close()
            assert_still_serving(server)
        finally:
            server.stop()

    def test_non_object_frame_is_typed_protocol_error(self, tiny_tpcds):
        server = start_server(tiny_tpcds)
        try:
            conn = raw_connect(server)
            conn.sendall(b"[1, 2, 3]\n")
            response = read_response(conn)
            assert response["ok"] is False
            assert response["error"]["code"] == "protocol"
            conn.close()
            assert_still_serving(server)
        finally:
            server.stop()

    def test_unknown_op_keeps_connection_usable(self, tiny_tpcds):
        # An unknown op is a per-request error, not a connection killer:
        # the same socket must still serve the next request.
        server = start_server(tiny_tpcds)
        try:
            conn = raw_connect(server)
            protocol.send_message(conn, {"id": 1, "op": "frobnicate"})
            reader = protocol.read_messages(conn)
            first = next(reader)
            assert first["ok"] is False and first["error"]["code"] == "protocol"
            protocol.send_message(conn, {"id": 2, "op": "ping"})
            second = next(reader)
            assert second == {"id": 2, "ok": True, "pong": True}
            conn.close()
        finally:
            server.stop()

    def test_query_without_name_is_typed(self, tiny_tpcds):
        server = start_server(tiny_tpcds)
        try:
            conn = raw_connect(server)
            protocol.send_message(conn, {"id": 7, "op": "query"})
            response = read_response(conn)
            assert response["ok"] is False
            assert response["error"]["code"] == "protocol"
            assert "requires a string" in response["error"]["message"]
            conn.close()
        finally:
            server.stop()

    def test_dribbled_valid_frame_still_parses(self, tiny_tpcds):
        # Slow but honest: one byte at a time under the idle timeout.
        # Each byte resets the timeout clock, so the frame completes.
        server = start_server(tiny_tpcds, idle_timeout_seconds=1.0)
        try:
            conn = raw_connect(server)
            for byte in protocol.encode_message({"id": 3, "op": "ping"}):
                conn.sendall(bytes([byte]))
                time.sleep(0.005)
            response = read_response(conn)
            assert response == {"id": 3, "ok": True, "pong": True}
            conn.close()
        finally:
            server.stop()
