"""Session bookkeeping tests."""

import threading

import pytest

from repro.service.session import DEFAULT_TENANT, SessionManager


class TestSessionManager:
    def test_open_assigns_unique_ids(self):
        manager = SessionManager()
        first = manager.open(tenant="a")
        second = manager.open(tenant="a")
        assert first.session_id != second.session_id
        assert manager.live() == 2

    def test_close_is_idempotent(self):
        manager = SessionManager()
        session = manager.open()
        manager.close(session.session_id)
        manager.close(session.session_id)
        assert manager.live() == 0
        assert manager.summary()["closed"] == 1

    def test_default_tenant(self):
        session = SessionManager().open()
        assert session.tenant == DEFAULT_TENANT

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            SessionManager().open(default_mode="psychic")

    def test_by_tenant_counts(self):
        manager = SessionManager()
        manager.open(tenant="a")
        manager.open(tenant="a")
        manager.open(tenant="b")
        assert manager.by_tenant() == {"a": 2, "b": 1}

    def test_concurrent_open_close(self):
        manager = SessionManager()

        def churn():
            for _ in range(100):
                session = manager.open(tenant="t")
                manager.close(session.session_id)

        threads = [threading.Thread(target=churn) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert manager.live() == 0
        summary = manager.summary()
        assert summary["opened"] == summary["closed"] == 800


class TestSession:
    def test_defaults_resolution(self):
        session = SessionManager().open(
            tenant="a", default_mode="exact", default_deadline_ms=500
        )
        assert session.resolve_mode(None) == "exact"
        assert session.resolve_mode("quickr") == "quickr"
        assert session.resolve_deadline_ms(None) == 500
        assert session.resolve_deadline_ms(100) == 100

    def test_counters_and_last_result(self):
        session = SessionManager().open(tenant="a")
        session.record_submitted()
        session.record_served("abc123", 42, 0.5)
        session.record_submitted()
        session.record_rejected()
        summary = session.summary()
        assert summary["queries_submitted"] == 2
        assert summary["queries_served"] == 1
        assert summary["queries_rejected"] == 1
        assert summary["last_result"]["digest"] == "abc123"
        assert summary["last_result"]["num_rows"] == 42
