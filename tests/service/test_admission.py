"""Admission-control unit tests: backpressure, quotas, deadlines, WRR."""

import threading
import time

import pytest

from repro.errors import AdmissionRejected
from repro.service.admission import (
    AdmissionConfig,
    AdmissionController,
    QueryTicket,
    RuntimeEstimator,
    drain_worker,
)
from repro.service.session import SessionManager


def make_ticket(sessions, tenant="t", query="q1", mode="quickr", deadline_ms=None):
    session = sessions.open(tenant=tenant)
    deadline_at = (
        time.monotonic() + deadline_ms / 1000.0 if deadline_ms is not None else None
    )
    return QueryTicket(session, query, mode, deadline_at)


@pytest.fixture()
def sessions():
    return SessionManager()


class TestBackpressure:
    def test_rejects_when_queue_full(self, sessions):
        controller = AdmissionController(AdmissionConfig(max_queue_depth=2, tenant_quota=10))
        controller.submit(make_ticket(sessions, tenant="a"))
        controller.submit(make_ticket(sessions, tenant="b"))
        with pytest.raises(AdmissionRejected) as info:
            controller.submit(make_ticket(sessions, tenant="c"))
        assert info.value.reason == "backpressure"
        assert controller.queue_depth == 2

    def test_rejection_is_instant_not_blocking(self, sessions):
        controller = AdmissionController(AdmissionConfig(max_queue_depth=1))
        controller.submit(make_ticket(sessions, tenant="a"))
        start = time.monotonic()
        with pytest.raises(AdmissionRejected):
            controller.submit(make_ticket(sessions, tenant="b"))
        assert time.monotonic() - start < 0.1

    def test_peak_queue_depth_tracks_high_water_mark(self, sessions):
        controller = AdmissionController(AdmissionConfig(max_queue_depth=10))
        for tenant in ("a", "b", "c"):
            controller.submit(make_ticket(sessions, tenant=tenant))
        assert controller.peak_queue_depth == 3
        controller.next_ticket(timeout=0.1)
        assert controller.queue_depth == 2
        assert controller.peak_queue_depth == 3

    def test_rejections_counted_in_registry(self, sessions):
        controller = AdmissionController(AdmissionConfig(max_queue_depth=1))
        controller.submit(make_ticket(sessions, tenant="a"))
        with pytest.raises(AdmissionRejected):
            controller.submit(make_ticket(sessions, tenant="b"))
        assert controller.registry.value(
            "service.rejected", tenant="b", reason="backpressure"
        ) == 1
        assert controller.registry.value("service.admitted", tenant="a") == 1


class TestQuota:
    def test_per_tenant_quota_enforced(self, sessions):
        controller = AdmissionController(AdmissionConfig(max_queue_depth=10, tenant_quota=2))
        controller.submit(make_ticket(sessions, tenant="a"))
        controller.submit(make_ticket(sessions, tenant="a"))
        with pytest.raises(AdmissionRejected) as info:
            controller.submit(make_ticket(sessions, tenant="a"))
        assert info.value.reason == "quota"
        # Other tenants are unaffected by a's exhaustion.
        controller.submit(make_ticket(sessions, tenant="b"))

    def test_running_counts_toward_quota(self, sessions):
        controller = AdmissionController(AdmissionConfig(max_queue_depth=10, tenant_quota=1))
        controller.submit(make_ticket(sessions, tenant="a"))
        ticket = controller.next_ticket(timeout=0.5)
        assert ticket is not None
        assert controller.queue_depth == 0  # queued drained ...
        with pytest.raises(AdmissionRejected) as info:
            controller.submit(make_ticket(sessions, tenant="a"))  # ... but still running
        assert info.value.reason == "quota"
        controller.task_done(ticket, 0.01)
        controller.submit(make_ticket(sessions, tenant="a"))  # slot returned


class TestDeadline:
    def test_expired_deadline_rejected_at_submit(self, sessions):
        controller = AdmissionController(AdmissionConfig())
        with pytest.raises(AdmissionRejected) as info:
            controller.submit(make_ticket(sessions, deadline_ms=-5))
        assert info.value.reason == "deadline"

    def test_infeasible_estimate_rejected_at_submit(self, sessions):
        controller = AdmissionController(AdmissionConfig())
        controller.estimator.observe(("q1", "quickr"), 10.0)  # 10 s typical runtime
        with pytest.raises(AdmissionRejected) as info:
            controller.submit(make_ticket(sessions, query="q1", deadline_ms=100))
        assert info.value.reason == "deadline"

    def test_unknown_query_admitted_on_deadline_alone(self, sessions):
        controller = AdmissionController(AdmissionConfig())
        controller.submit(make_ticket(sessions, query="novel", deadline_ms=1000))
        assert controller.queue_depth == 1

    def test_queued_query_dropped_when_deadline_expires(self, sessions):
        controller = AdmissionController(AdmissionConfig())
        ticket = make_ticket(sessions, deadline_ms=30)
        controller.submit(ticket)
        time.sleep(0.06)  # deadline lapses while queued
        assert controller.next_ticket(timeout=0.1) is None  # dropped, not dispatched
        assert ticket.rejection is not None
        assert ticket.rejection.reason == "deadline"
        assert ticket.wait(0.1)  # the waiter was unblocked, no hang

    def test_feasible_deadline_dispatches(self, sessions):
        controller = AdmissionController(AdmissionConfig())
        controller.estimator.observe(("q1", "quickr"), 0.01)
        ticket = make_ticket(sessions, query="q1", deadline_ms=5000)
        controller.submit(ticket)
        assert controller.next_ticket(timeout=0.5) is ticket


class TestFairScheduling:
    def _drain_order(self, controller, count):
        order = []
        for _ in range(count):
            ticket = controller.next_ticket(timeout=0.5)
            assert ticket is not None
            order.append(ticket.tenant)
            controller.task_done(ticket, None)
        return order

    def test_equal_weights_interleave(self, sessions):
        controller = AdmissionController(AdmissionConfig(max_queue_depth=100, tenant_quota=100))
        # Tenant a floods first; b arrives after. FIFO would starve b.
        for _ in range(4):
            controller.submit(make_ticket(sessions, tenant="a"))
        for _ in range(4):
            controller.submit(make_ticket(sessions, tenant="b"))
        order = self._drain_order(controller, 4)
        assert order.count("a") == 2
        assert order.count("b") == 2

    def test_weighted_round_robin_respects_weights(self, sessions):
        config = AdmissionConfig(
            max_queue_depth=100, tenant_quota=100,
            tenant_weights={"heavy": 3.0, "light": 1.0},
        )
        controller = AdmissionController(config)
        for _ in range(9):
            controller.submit(make_ticket(sessions, tenant="heavy"))
        for _ in range(9):
            controller.submit(make_ticket(sessions, tenant="light"))
        order = self._drain_order(controller, 8)
        # Throughput converges to the 3:1 weight ratio.
        assert order.count("heavy") == 6
        assert order.count("light") == 2

    def test_single_tenant_fifo(self, sessions):
        controller = AdmissionController(AdmissionConfig(max_queue_depth=100, tenant_quota=100))
        tickets = [make_ticket(sessions, tenant="a", query=f"q{i}") for i in range(5)]
        for ticket in tickets:
            controller.submit(ticket)
        drained = [controller.next_ticket(timeout=0.5) for _ in range(5)]
        assert [t.query_name for t in drained] == [f"q{i}" for i in range(5)]


class TestLifecycle:
    def test_close_rejects_queued_and_future(self, sessions):
        controller = AdmissionController(AdmissionConfig())
        queued = make_ticket(sessions, tenant="a")
        controller.submit(queued)
        drained = controller.close()
        assert drained == [queued]
        assert queued.rejection.reason == "backpressure"
        assert queued.wait(0.1)
        with pytest.raises(AdmissionRejected):
            controller.submit(make_ticket(sessions, tenant="b"))

    def test_next_ticket_times_out_empty(self, sessions):
        controller = AdmissionController(AdmissionConfig())
        start = time.monotonic()
        assert controller.next_ticket(timeout=0.05) is None
        assert 0.03 < time.monotonic() - start < 1.0

    def test_drain_worker_executes_and_survives_handler_errors(self, sessions):
        controller = AdmissionController(AdmissionConfig())
        results = []

        def handler(ticket):
            if ticket.query_name == "boom":
                raise RuntimeError("injected")
            ticket.resolve(ticket.query_name)
            results.append(ticket.query_name)
            return 0.01

        worker = threading.Thread(
            target=drain_worker, args=(controller, handler, 0.02), daemon=True
        )
        worker.start()
        bad = make_ticket(sessions, query="boom")
        good = make_ticket(sessions, query="fine")
        controller.submit(bad)
        controller.submit(good)
        assert bad.wait(2.0) and good.wait(2.0)
        assert isinstance(bad.error, RuntimeError)
        assert good.result == "fine"
        # Quota slots were returned by task_done in both paths.
        assert controller.outstanding(bad.tenant) == 0
        controller.close()
        worker.join(timeout=2.0)
        assert not worker.is_alive()


class TestRuntimeEstimator:
    def test_first_observation_seeds(self):
        estimator = RuntimeEstimator(alpha=0.5)
        assert estimator.estimate("k") is None
        estimator.observe("k", 2.0)
        assert estimator.estimate("k") == 2.0

    def test_ewma_converges(self):
        estimator = RuntimeEstimator(alpha=0.5)
        estimator.observe("k", 2.0)
        estimator.observe("k", 1.0)
        assert estimator.estimate("k") == pytest.approx(1.5)
        for _ in range(20):
            estimator.observe("k", 1.0)
        assert estimator.estimate("k") == pytest.approx(1.0, abs=1e-4)
