"""End-to-end service tests: real sockets, concurrent sessions, shared engine.

Every test talks to a :class:`QueryServer` bound to an ephemeral port on
loopback, through the real :class:`ServiceClient` — the full stack the
benchmark and CI smoke exercise, shrunk to the tiny TPC-DS database.
"""

import threading
import time

import pytest

from repro.engine.executor import Executor
from repro.errors import AdmissionRejected, ServiceError
from repro.optimizer.planner import QuickrPlanner
from repro.service import (
    AdmissionConfig,
    QueryServer,
    QueryService,
    ServiceClient,
    ServiceConfig,
)
from repro.service.protocol import table_digest
from repro.workloads.tpcds import query_by_name

QUERIES = ("q07", "q12")


def start_server(db, **admission_kwargs):
    defaults = dict(max_queue_depth=16, tenant_quota=8)
    defaults.update(admission_kwargs)
    config = ServiceConfig(num_workers=3, admission=AdmissionConfig(**defaults))
    service = QueryService(db, config)
    return QueryServer(service, port=0).start()


@pytest.fixture(scope="module")
def server(tiny_tpcds):
    srv = start_server(tiny_tpcds)
    yield srv
    srv.stop()


@pytest.fixture(scope="module")
def library_digests(tiny_tpcds):
    """Library-mode answers (fresh planner + executor, same database)."""
    executor = Executor(tiny_tpcds)
    planner = QuickrPlanner(tiny_tpcds)
    digests = {}
    for name in QUERIES:
        query = query_by_name(tiny_tpcds, name)
        digests[(name, "quickr")] = table_digest(
            executor.execute(planner.plan(query).plan).table
        )
        digests[(name, "exact")] = table_digest(
            executor.execute(planner.plan_baseline(query).plan).table
        )
    return digests


def connect(server, tenant="default", **kwargs):
    host, port = server.address
    client = ServiceClient(host, port, timeout=60.0)
    client.hello(tenant=tenant, **kwargs)
    return client


class TestBasicOps:
    def test_hello_advertises_suite(self, server):
        with connect(server, tenant="ads") as client:
            assert client.tenant == "ads"
            assert "q07" in client.queries and len(client.queries) == 24

    def test_ping(self, server):
        with connect(server) as client:
            assert client.ping()

    def test_served_answer_bit_identical_to_library_mode(self, server, library_digests):
        with connect(server) as client:
            for name in QUERIES:
                for mode in ("quickr", "exact"):
                    reply = client.query(name, mode=mode)
                    # table_from_wire already verified the payload against
                    # the digest; here we pin the digest to library mode.
                    assert reply.digest == library_digests[(name, mode)], (
                        f"{name}/{mode} served answer differs from library execution"
                    )

    def test_repeated_query_hits_shared_plan_cache(self, server):
        with connect(server) as client:
            client.query("q07")
            reply = client.query("q07")
            assert reply.stats["plan_cache_hit"] is True

    def test_stats_op(self, server):
        with connect(server, tenant="statst") as client:
            client.query("q12")
            stats = client.stats()
            assert stats["admission"]["queue_depth"] == 0
            assert stats["sessions"]["live"] >= 1
            assert stats["plan_cache"]["size"] >= 1

    def test_session_defaults_apply(self, server, library_digests):
        with connect(server, mode="exact") as client:
            reply = client.query("q12")  # no explicit mode
            assert reply.mode == "exact"
            assert reply.digest == library_digests[("q12", "exact")]


class TestProtocolErrors:
    def test_unknown_query_is_protocol_error(self, server):
        with connect(server) as client:
            with pytest.raises(ServiceError, match="unknown query"):
                client.query("q99")
            assert client.ping()  # connection survives

    def test_unknown_op_is_protocol_error(self, server):
        with connect(server) as client:
            with pytest.raises(ServiceError, match="unknown op"):
                client._call("transmogrify")
            assert client.ping()

    def test_bad_mode_is_protocol_error(self, server):
        with connect(server) as client:
            with pytest.raises(ServiceError, match="unknown mode"):
                client.query("q07", mode="psychic")

    def test_disconnect_closes_session(self, tiny_tpcds):
        srv = start_server(tiny_tpcds)
        try:
            client = connect(srv, tenant="ghost")
            assert srv.service.sessions.live() == 1
            client.close()
            deadline = time.monotonic() + 5.0
            while srv.service.sessions.live() and time.monotonic() < deadline:
                time.sleep(0.01)
            assert srv.service.sessions.live() == 0
        finally:
            srv.stop()


class TestAdmissionOverWire:
    def _inject_slow_query(self, server, seconds=0.6):
        def slow_builder(db):
            time.sleep(seconds)
            return query_by_name(db, "q12")

        server.service._query_builders["slow"] = slow_builder

    def test_over_quota_gets_explicit_rejection_not_hang(self, tiny_tpcds):
        srv = start_server(tiny_tpcds, tenant_quota=1)
        try:
            self._inject_slow_query(srv)
            blocker = connect(srv, tenant="greedy")
            rival = connect(srv, tenant="greedy")
            other = connect(srv, tenant="polite")
            background = threading.Thread(
                target=lambda: blocker.query("slow"), daemon=True
            )
            background.start()
            time.sleep(0.2)  # slow query is now running, quota slot held
            start = time.monotonic()
            with pytest.raises(AdmissionRejected) as info:
                rival.query("q07")
            assert info.value.reason == "quota"
            assert time.monotonic() - start < 0.5  # rejected, not queued behind
            other.query("q07")  # another tenant is unaffected
            background.join(timeout=10.0)
            for client in (blocker, rival, other):
                client.close()
        finally:
            srv.stop()

    @staticmethod
    def _wait_for(predicate, timeout=5.0):
        deadline = time.monotonic() + timeout
        while not predicate():
            assert time.monotonic() < deadline, "timed out waiting for server state"
            time.sleep(0.01)

    def test_backpressure_over_wire(self, tiny_tpcds):
        srv = start_server(tiny_tpcds, max_queue_depth=1, tenant_quota=10)
        admission = srv.service.admission
        try:
            self._inject_slow_query(srv, seconds=2.0)
            clients = [connect(srv, tenant=f"t{i}") for i in range(6)]
            threads = []
            # Saturate the 3 workers one query at a time (wait until each
            # is dispatched off the queue), then park a 4th in the queue.
            for index, want_queued in ((0, 0), (1, 0), (2, 0), (3, 1)):
                thread = threading.Thread(
                    target=lambda c=clients[index]: c.query("slow"), daemon=True
                )
                thread.start()
                threads.append(thread)
                self._wait_for(
                    lambda index=index, want=want_queued: (
                        admission.queue_depth == want
                        and sum(admission.outstanding(f"t{i}") for i in range(4))
                        == index + 1
                    )
                )
            with pytest.raises(AdmissionRejected) as info:
                clients[5].query("q07")
            assert info.value.reason == "backpressure"
            for thread in threads:
                thread.join(timeout=15.0)
            for client in clients:
                client.close()
        finally:
            srv.stop()

    def test_deadline_rejection_over_wire(self, tiny_tpcds):
        srv = start_server(tiny_tpcds)
        try:
            with connect(srv) as client:
                client.query("q07")  # seeds the runtime estimator
                with pytest.raises(AdmissionRejected) as info:
                    client.query("q07", deadline_ms=0.01)
                assert info.value.reason == "deadline"
        finally:
            srv.stop()


class TestConcurrentSessions:
    def test_many_sessions_one_engine(self, server, library_digests):
        num_sessions = 12
        errors = []
        digests = []
        lock = threading.Lock()

        def session_run(index):
            try:
                with connect(server, tenant=f"tenant{index % 3}") as client:
                    for name in QUERIES:
                        reply = client.query(name)
                        with lock:
                            digests.append((name, reply.digest))
            except Exception as exc:  # noqa: BLE001
                with lock:
                    errors.append(exc)

        threads = [
            threading.Thread(target=session_run, args=(i,), daemon=True)
            for i in range(num_sessions)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
        assert not errors
        assert len(digests) == num_sessions * len(QUERIES)
        for name, digest in digests:
            assert digest == library_digests[(name, "quickr")]

    def test_tenant_metrics_labeled(self, tiny_tpcds):
        srv = start_server(tiny_tpcds)
        try:
            with connect(srv, tenant="labeled") as client:
                client.query("q12")
            registry = srv.service.registry
            assert registry.value("service.admitted", tenant="labeled") == 1
            hist = registry.histogram("service.execute_seconds", tenant="labeled")
            assert hist.count == 1
        finally:
            srv.stop()


class TestShutdown:
    def test_clean_shutdown_via_protocol(self, tiny_tpcds):
        srv = start_server(tiny_tpcds)
        host, port = srv.address
        client = connect(srv)
        client.query("q12")
        client.shutdown()
        assert srv.wait(timeout=10.0)
        # Workers drained and the port is released.
        for thread in srv.service._workers:
            thread.join(timeout=5.0)
            assert not thread.is_alive()
        with pytest.raises(OSError):
            ServiceClient(host, port, timeout=1.0)

    def test_stop_rejects_queued_tickets_explicitly(self, tiny_tpcds):
        config = ServiceConfig(num_workers=1, admission=AdmissionConfig(max_queue_depth=8))
        service = QueryService(tiny_tpcds, config)

        def slow_builder(db):
            time.sleep(0.5)
            return query_by_name(db, "q12")

        service._query_builders["slow"] = slow_builder
        service.start()
        session = service.open_session(tenant="t")
        running = service.submit(session, "slow")
        queued = service.submit(session, "q07")
        time.sleep(0.1)
        service.close()
        assert queued.wait(5.0)
        assert queued.rejection is not None
        assert queued.rejection.reason == "backpressure"
        assert running.wait(5.0)  # the in-flight query completed
